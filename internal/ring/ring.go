// Package ring provides a bounded, lock-free single-producer /
// single-consumer queue — the engine data plane's replacement for
// mutex-guarded Go channels on the record hot path (see DESIGN.md
// "Engine data plane").
//
// The discipline is strictly SPSC: exactly one goroutine may call Push
// and exactly one may call Pop. Close and Drain relax that for
// teardown — Close may be called by the producer (clean exit) or by a
// supervising goroutine after the consumer died; Drain uses a CAS on
// the head index so concurrent supervisors can reclaim leftovers with
// each item handed to exactly one caller (after the consumer goroutine
// has exited).
package ring

import (
	"sync/atomic"
)

// cacheLinePad separates the producer- and consumer-owned indices so
// they never share a cache line (false sharing halves SPSC throughput).
type cacheLinePad struct{ _ [64]byte }

// SPSC is a bounded single-producer/single-consumer ring buffer.
// Capacity is rounded up to a power of two so index wrapping is a mask.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, which subsumes the acquire/release pairing a classic
// SPSC queue needs — the producer's tail.Store publishes the slot
// write, the consumer's tail.Load acquires it, and symmetrically for
// head on the recycle path.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // next slot to pop (consumer-advanced)
	// cachedTail is the consumer's snapshot of tail: the consumer only
	// re-reads the shared tail when the snapshot says "empty", so a
	// drained-then-refilled ring costs one shared load per batch of
	// pushes instead of one per pop.
	cachedTail uint64
	// pops counts successful Pop calls. Consumer-owned: updated with a
	// plain-load-then-atomic-store (no RMW, so no cross-core cacheline
	// ping beyond the line the consumer already owns); the sampler's
	// atomic Load observes a possibly slightly stale but never torn
	// value. Drain does not count — it is the teardown reclaim path.
	pops atomic.Uint64

	_    cacheLinePad
	tail atomic.Uint64 // next slot to push (producer-advanced)
	// cachedHead mirrors cachedTail for the producer's full check.
	cachedHead uint64
	// Producer-owned counters, same single-writer store discipline as
	// pops. pushFails counts Push attempts rejected because the ring was
	// full even after refreshing cachedHead — the backpressure stall
	// signal (closed-ring rejections are teardown noise and not counted).
	// highWater tracks the maximum occupancy bound observed at publish
	// time (tail+1-cachedHead; cachedHead ≤ head so this bounds true
	// occupancy from above, and the full check bounds it by Cap).
	pushes    atomic.Uint64
	pushFails atomic.Uint64
	highWater atomic.Uint64

	_      cacheLinePad
	closed atomic.Bool
}

// Stats is a sampled snapshot of the ring's hot-path counters. Each
// field is read with an individual atomic load — never torn — but the
// fields are not mutually consistent (the producer may land a push
// between two loads). Counters are cumulative; samplers diff
// consecutive snapshots to derive rates.
type Stats struct {
	Pushes    uint64 // successful Push calls
	PushFails uint64 // Push attempts rejected by a full ring (stalls)
	Pops      uint64 // successful Pop calls
	HighWater uint64 // max observed occupancy bound, ≤ Cap()
}

// New builds a ring with capacity ≥ capacity rounded up to a power of
// two (minimum 2).
func New[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for int(n) < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}
}

// Cap returns the ring's (rounded) capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the current occupancy (racy snapshot; exact only when
// both ends are quiescent).
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push enqueues v. It returns false — without enqueueing — when the
// ring is full or closed; the producer decides whether to spin, park,
// or drop. Producer goroutine only.
//
// Closed-ness is checked before the publish, so at most one Push that
// raced a concurrent Close can still land in the buffer; Drain (which
// teardown runs after Close) reclaims it.
func (r *SPSC[T]) Push(v T) bool {
	if r.closed.Load() {
		return false
	}
	tail := r.tail.Load()
	if tail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead >= uint64(len(r.buf)) {
			r.pushFails.Store(r.pushFails.Load() + 1)
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	r.pushes.Store(r.pushes.Load() + 1)
	if occ := tail + 1 - r.cachedHead; occ > r.highWater.Load() {
		r.highWater.Store(occ)
	}
	return true
}

// Pop dequeues the oldest item. The second return is false when the
// ring is empty. Consumer goroutine only (use Drain from supervisors).
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero
	r.head.Store(head + 1)
	r.pops.Store(r.pops.Load() + 1)
	return v, true
}

// Stats samples the hot-path counters. Callable from any goroutine;
// see the Stats type for the (non-)consistency contract.
func (r *SPSC[T]) Stats() Stats {
	return Stats{
		Pushes:    r.pushes.Load(),
		PushFails: r.pushFails.Load(),
		Pops:      r.pops.Load(),
		HighWater: r.highWater.Load(),
	}
}

// Close marks the ring closed: subsequent Pushes fail. Pop and Drain
// keep returning whatever is already buffered. Idempotent; callable
// from any goroutine.
func (r *SPSC[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close was called.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

// Empty reports whether the ring currently holds nothing.
func (r *SPSC[T]) Empty() bool { return r.tail.Load() == r.head.Load() }

// Drain pops one item like Pop, but advances head with a CAS so that
// multiple concurrent Drain callers each receive a buffered item at
// most once. Teardown path: the master drains a crashed consumer's
// rings (mirroring the dead-consumer channel drain of the pre-ring
// engine) after Close has stopped the producer and the consumer
// goroutine has exited — Drain must not race Pop, whose head advance
// is a plain store.
func (r *SPSC[T]) Drain() (T, bool) {
	var zero T
	for {
		head := r.head.Load()
		if head == r.tail.Load() {
			return zero, false
		}
		v := r.buf[head&r.mask]
		if r.head.CompareAndSwap(head, head+1) {
			// The slot is intentionally not zeroed here: a concurrent Pop
			// may already have claimed a later index and zeroing buf[head]
			// after a lost CAS would clobber a live slot one lap later.
			// Drained rings are teardown garbage; the GC reclaims them
			// wholesale.
			return v, true
		}
	}
}
