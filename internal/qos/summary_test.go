package qos

import (
	"math"
	"testing"

	"nephelix/internal/model"
)

func TestVertexStatsDerived(t *testing.T) {
	s := VertexStats{
		ServiceTimeMean:  0.002, // 2 ms
		InterarrivalMean: 0.004, // 4 ms => 250 items/s
	}
	if got := s.ArrivalRate(); got != 250 {
		t.Errorf("ArrivalRate: got %v, want 250", got)
	}
	if got := s.ServiceRate(); got != 500 {
		t.Errorf("ServiceRate: got %v, want 500", got)
	}
	if got := s.Utilization(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Utilization: got %v, want 0.5", got)
	}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestVertexStatsZeroValues(t *testing.T) {
	var s VertexStats
	if s.ArrivalRate() != 0 {
		t.Error("zero interarrival must give zero arrival rate")
	}
	if !math.IsInf(s.ServiceRate(), 1) {
		t.Error("zero service time must give infinite service rate")
	}
	if s.Utilization() != 0 {
		t.Error("zero stats must give zero utilization")
	}
}

func TestEdgeStatsQueueWait(t *testing.T) {
	e := EdgeStats{ChannelLatency: 0.010, OutputBatchLatency: 0.004}
	if got := e.QueueWait(); !almostEqual(got, 0.006, 1e-12) {
		t.Errorf("QueueWait: got %v, want 0.006", got)
	}
	// obl > l can transiently happen with sampling noise; wait floors at 0.
	e = EdgeStats{ChannelLatency: 0.002, OutputBatchLatency: 0.004}
	if got := e.QueueWait(); got != 0 {
		t.Errorf("QueueWait floor: got %v, want 0", got)
	}
}

func TestPartialSummaryFinalizeAverages(t *testing.T) {
	p := NewPartialSummary()
	// Two tasks of vertex "v" with service means 2 ms and 4 ms.
	p.AddTask("v", 0.001, 0.002, 0.5, 0.010, 1.0, 100)
	p.AddTask("v", 0.003, 0.004, 0.7, 0.020, 1.2, 50)
	p.AddChannel(model.EdgeKey{Source: "u", Target: "v"}, 0.010, 0.004, 10)
	p.AddChannel(model.EdgeKey{Source: "u", Target: "v"}, 0.020, 0.006, 20)

	s := p.Finalize(map[string]int{"v": 2})
	v, ok := s.Vertex("v")
	if !ok {
		t.Fatal("vertex v missing from summary")
	}
	if !almostEqual(v.TaskLatency, 0.002, 1e-12) ||
		!almostEqual(v.ServiceTimeMean, 0.003, 1e-12) ||
		!almostEqual(v.ServiceTimeCV, 0.6, 1e-12) ||
		!almostEqual(v.InterarrivalMean, 0.015, 1e-12) ||
		!almostEqual(v.InterarrivalCV, 1.1, 1e-12) {
		t.Errorf("vertex averages wrong: %+v", v)
	}
	if v.Parallelism != 2 || v.Samples != 150 {
		t.Errorf("parallelism/samples: got %d/%d, want 2/150", v.Parallelism, v.Samples)
	}
	e, ok := s.Edge(model.EdgeKey{Source: "u", Target: "v"})
	if !ok {
		t.Fatal("edge u->v missing from summary")
	}
	if !almostEqual(e.ChannelLatency, 0.015, 1e-12) || !almostEqual(e.OutputBatchLatency, 0.005, 1e-12) {
		t.Errorf("edge averages wrong: %+v", e)
	}
}

func TestPartialSummaryMergeEqualsDirect(t *testing.T) {
	// Building one partial from all tasks must equal merging two halves.
	mk := func(tasks [][6]float64) *PartialSummary {
		p := NewPartialSummary()
		for _, v := range tasks {
			p.AddTask("v", v[0], v[1], v[2], v[3], v[4], int64(v[5]))
		}
		return p
	}
	all := mk([][6]float64{
		{0.001, 0.002, 0.5, 0.01, 1.0, 10},
		{0.002, 0.003, 0.6, 0.02, 1.1, 20},
		{0.003, 0.004, 0.7, 0.03, 1.2, 30},
	})
	a := mk([][6]float64{{0.001, 0.002, 0.5, 0.01, 1.0, 10}})
	b := mk([][6]float64{
		{0.002, 0.003, 0.6, 0.02, 1.1, 20},
		{0.003, 0.004, 0.7, 0.03, 1.2, 30},
	})
	a.Merge(b)
	par := map[string]int{"v": 3}
	sAll, sMerged := all.Finalize(par), a.Finalize(par)
	va, vm := sAll.Vertices["v"], sMerged.Vertices["v"]
	if !almostEqual(va.TaskLatency, vm.TaskLatency, 1e-12) ||
		!almostEqual(va.ServiceTimeMean, vm.ServiceTimeMean, 1e-12) ||
		!almostEqual(va.InterarrivalCV, vm.InterarrivalCV, 1e-12) ||
		va.Samples != vm.Samples {
		t.Errorf("merged != direct: %+v vs %+v", vm, va)
	}
}

func TestFinalizeParallelismFallback(t *testing.T) {
	p := NewPartialSummary()
	p.AddTask("v", 0.001, 0.002, 0.5, 0.01, 1.0, 1)
	p.AddTask("v", 0.001, 0.002, 0.5, 0.01, 1.0, 1)
	s := p.Finalize(nil)
	if got := s.Vertices["v"].Parallelism; got != 2 {
		t.Errorf("fallback parallelism: got %d, want observed task count 2", got)
	}
	p.SetParallelism("v", 7)
	s = p.Finalize(nil)
	if got := s.Vertices["v"].Parallelism; got != 7 {
		t.Errorf("recorded parallelism: got %d, want 7", got)
	}
}

func TestSummaryCovers(t *testing.T) {
	g := model.NewJobGraph()
	for _, n := range []string{"a", "b"} {
		if err := g.AddVertex(model.JobVertex{Name: n, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "b", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "a->b", "b")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSummary()
	if s.Covers(seq) {
		t.Error("empty summary must not cover sequence")
	}
	s.Edges[model.EdgeKey{Source: "a", Target: "b"}] = EdgeStats{}
	if s.Covers(seq) {
		t.Error("summary without vertex must not cover sequence")
	}
	s.Vertices["b"] = VertexStats{}
	if !s.Covers(seq) {
		t.Error("complete summary must cover sequence")
	}
}
