package qos

import (
	"testing"

	"nephelix/internal/model"
)

// seqGraph builds a src -> work -> sink chain and returns the full
// sequence over it.
func seqGraph(t *testing.T) *model.Sequence {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1},
		{Name: "work", Parallelism: 4, MinParallelism: 1, MaxParallelism: 8},
		{Name: "sink", Parallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink", "sink")
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func reportWorkers(m *Manager, indices ...int) {
	for _, i := range indices {
		m.ReportTask(TaskReport{Task: taskID("work", i), ServiceCount: 1, ServiceMean: 0.01})
	}
}

func TestFreshnessTracking(t *testing.T) {
	m := NewManager(ManagerConfig{HistoryLength: 5, EvictAfter: 3})
	reportWorkers(m, 0, 1, 2, 3)
	m.ReportTask(TaskReport{Task: taskID("sink", 0), ServiceCount: 1, ServiceMean: 0.001})

	p := m.PartialSummary()
	if got := p.FreshTaskCount("work"); got != 4 {
		t.Errorf("fresh work tasks: got %d, want 4", got)
	}
	s := p.Finalize(map[string]int{"work": 4, "sink": 1})
	if s.Vertices["work"].FreshTasks != 4 {
		t.Errorf("FreshTasks: got %d, want 4", s.Vertices["work"].FreshTasks)
	}

	// Next interval only two workers report: the other two histories are
	// still live (idle < EvictAfter) but no longer fresh.
	reportWorkers(m, 0, 1)
	m.ReportTask(TaskReport{Task: taskID("sink", 0), ServiceCount: 1, ServiceMean: 0.001})
	s = MergePartials(map[string]int{"work": 4, "sink": 1}, m.PartialSummary())
	v := s.Vertices["work"]
	if v.Parallelism != 4 || v.FreshTasks != 2 {
		t.Errorf("stale workers: parallelism=%d fresh=%d, want 4/2", v.Parallelism, v.FreshTasks)
	}
}

func TestSequenceCoverage(t *testing.T) {
	seq := seqGraph(t)
	m := NewManager(ManagerConfig{HistoryLength: 5, EvictAfter: 3})
	m.ReportTask(TaskReport{Task: taskID("src", 0), ServiceCount: 1, ServiceMean: 0.001})
	reportWorkers(m, 0, 1, 2, 3)
	m.ReportTask(TaskReport{Task: taskID("sink", 0), ServiceCount: 1, ServiceMean: 0.001})
	par := map[string]int{"src": 1, "work": 4, "sink": 1}

	s := MergePartials(par, m.PartialSummary())
	if got := s.SequenceCoverage(seq); got != 1.0 {
		t.Errorf("full coverage: got %v, want 1", got)
	}

	// Half the workers stop reporting (crashed). The sequence's vertex
	// set is {work, sink} (it starts with an edge): 3 of 5 slots fresh.
	m.ReportTask(TaskReport{Task: taskID("src", 0), ServiceCount: 1, ServiceMean: 0.001})
	reportWorkers(m, 0, 1)
	m.ReportTask(TaskReport{Task: taskID("sink", 0), ServiceCount: 1, ServiceMean: 0.001})
	s = MergePartials(par, m.PartialSummary())
	if got, want := s.SequenceCoverage(seq), 3.0/5.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("partial coverage: got %v, want %v", got, want)
	}

	// A vertex missing entirely from the summary pins its slot stale.
	empty := NewSummary()
	if got := empty.SequenceCoverage(seq); got != 0 {
		t.Errorf("empty summary coverage: got %v, want 0", got)
	}
}

func TestSequenceCoverageClampsOverreport(t *testing.T) {
	// More fresh reports than the authoritative parallelism (e.g. during
	// a scale-down transient) must not push coverage above 1.
	seq := seqGraph(t)
	m := NewManager(DefaultManagerConfig())
	m.ReportTask(TaskReport{Task: taskID("src", 0), ServiceCount: 1, ServiceMean: 0.001})
	reportWorkers(m, 0, 1, 2, 3)
	m.ReportTask(TaskReport{Task: taskID("sink", 0), ServiceCount: 1, ServiceMean: 0.001})
	s := MergePartials(map[string]int{"src": 1, "work": 2, "sink": 1}, m.PartialSummary())
	if got := s.SequenceCoverage(seq); got != 1.0 {
		t.Errorf("coverage with over-reporting: got %v, want clamped to 1", got)
	}
}

// TestAgedOutBoundary pins down the eviction boundary: a history survives
// exactly EvictAfter idle intervals and is dropped on the next one, and
// the AgedOut counters record the eviction.
func TestAgedOutBoundary(t *testing.T) {
	m := NewManager(ManagerConfig{HistoryLength: 5, EvictAfter: 2})
	m.ReportTask(TaskReport{Task: taskID("v", 0), ServiceCount: 1, ServiceMean: 0.01})
	ch := model.ChannelID{Edge: model.EdgeKey{Source: "u", Target: "v"}}
	m.ReportChannel(ChannelReport{Channel: ch, LatencyCount: 1, LatencyMean: 0.01})

	// EvictAfter = 2: the histories survive intervals 1 and 2...
	for i := 0; i < 2; i++ {
		_ = m.PartialSummary()
		if m.TrackedTasks() != 1 || m.TrackedChannels() != 1 {
			t.Fatalf("interval %d: history evicted too early", i+1)
		}
		if at, ac := m.AgedOut(); at != 0 || ac != 0 {
			t.Fatalf("interval %d: AgedOut=%d/%d before the boundary", i+1, at, ac)
		}
	}
	// ...and are evicted on interval 3.
	_ = m.PartialSummary()
	if m.TrackedTasks() != 0 || m.TrackedChannels() != 0 {
		t.Error("history survived past EvictAfter")
	}
	if at, ac := m.AgedOut(); at != 1 || ac != 1 {
		t.Errorf("AgedOut: got %d/%d, want 1/1", at, ac)
	}

	// A report inside the window resets the idle counter.
	m.ReportTask(TaskReport{Task: taskID("v", 1), ServiceCount: 1, ServiceMean: 0.01})
	_ = m.PartialSummary()
	m.ReportTask(TaskReport{Task: taskID("v", 1), ServiceCount: 1, ServiceMean: 0.01})
	for i := 0; i < 2; i++ {
		_ = m.PartialSummary()
	}
	if m.TrackedTasks() != 1 {
		t.Error("report inside the window did not reset the idle counter")
	}
	if at, _ := m.AgedOut(); at != 1 {
		t.Errorf("AgedOut after reset: got %d, want still 1", at)
	}
}
