package qos

import (
	"encoding/json"
	"reflect"
	"testing"

	"nephelix/internal/model"
)

func testSummary() *Summary {
	s := NewSummary()
	s.Vertices["filter"] = VertexStats{
		TaskLatency:      0.012,
		ServiceTimeMean:  0.004,
		ServiceTimeCV:    0.5,
		InterarrivalMean: 0.008,
		InterarrivalCV:   1.25,
		Parallelism:      4,
		Tasks:            4,
		Samples:          1000,
		FreshTasks:       4,
	}
	s.Vertices["sink"] = VertexStats{
		TaskLatency:      0.001,
		ServiceTimeMean:  0.0005,
		InterarrivalMean: 0.002,
		Parallelism:      2,
		Tasks:            2,
		Samples:          500,
		FreshTasks:       2,
	}
	s.Edges[model.EdgeKey{Source: "src", Target: "filter"}] = EdgeStats{
		ChannelLatency:     0.020,
		OutputBatchLatency: 0.015,
		Samples:            800,
		FreshChannels:      8,
	}
	s.Edges[model.EdgeKey{Source: "filter", Target: "sink"}] = EdgeStats{
		ChannelLatency:     0.003,
		OutputBatchLatency: 0.001,
		Samples:            400,
		FreshChannels:      8,
	}
	return s
}

// TestObsSummaryStringGolden pins the deterministic log rendering that
// the attribution report and the operator docs quote.
func TestObsSummaryStringGolden(t *testing.T) {
	want := "" +
		"filter: l=0.012000 S=0.004000 cS=0.500 A=0.008000 cA=1.250 p=4 rho=0.500\n" +
		"sink: l=0.001000 S=0.000500 cS=0.000 A=0.002000 cA=0.000 p=2 rho=0.250\n" +
		"filter->sink: l=0.003000 obl=0.001000 W=0.002000\n" +
		"src->filter: l=0.020000 obl=0.015000 W=0.005000\n"
	if got := testSummary().String(); got != want {
		t.Errorf("String() =\n%s\nwant\n%s", got, want)
	}
}

// TestObsSummaryJSONRoundTrip: Marshal then Unmarshal must reproduce the
// summary exactly, including the typed edge keys.
func TestObsSummaryJSONRoundTrip(t *testing.T) {
	s := testSummary()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Edge keys travel as "source->target" strings.
	var wire struct {
		Edges map[string]json.RawMessage `json:"edges"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("wire decode: %v", err)
	}
	if _, ok := wire.Edges["src->filter"]; !ok {
		t.Errorf("wire form does not use string edge keys: %s", data)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(s.Vertices, back.Vertices) {
		t.Errorf("vertices changed across round trip:\n%+v\n%+v", s.Vertices, back.Vertices)
	}
	if !reflect.DeepEqual(s.Edges, back.Edges) {
		t.Errorf("edges changed across round trip:\n%+v\n%+v", s.Edges, back.Edges)
	}
	// The rendering of the round-tripped summary must match too.
	if s.String() != back.String() {
		t.Errorf("String() differs after round trip:\n%s\n%s", s.String(), back.String())
	}
}

func TestObsSummaryJSONEmpty(t *testing.T) {
	var back Summary
	if err := json.Unmarshal([]byte(`{}`), &back); err != nil {
		t.Fatalf("Unmarshal {}: %v", err)
	}
	if back.Vertices == nil || back.Edges == nil {
		t.Error("empty document must decode to usable (non-nil) maps")
	}
	if err := json.Unmarshal([]byte(`{"edges":{"nosep":{}}}`), &back); err == nil {
		t.Error("malformed edge key must error")
	}
}
