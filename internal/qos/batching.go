package qos

import (
	"math"

	"nephelix/internal/model"
)

// BatchingController is the stateful adaptive-output-batching controller
// run by the QoS plane once per adjustment interval (the substrate from
// the authors' prior work that this paper builds on). It assigns each
// constrained edge a flush deadline and adjusts the deadlines greedily
// from measurements:
//
//   - Batching is the cheapest latency spend for throughput, but larger
//     batches make consumer arrivals bursty, which grows the measured
//     queue waiting time W_e = l_e − obl_e. The wait cost per deadline
//     millisecond differs per edge (it scales with the consumer's service
//     time), so a uniform budget split wastes the constraint's budget.
//   - When the sequence's total queue wait exceeds the scaler's allowance
//     Ŵ_js = f·(ℓ − Σ l_jv), or the estimated sequence latency exceeds
//     the safety-margined bound, the edge with the largest measured wait
//     shrinks multiplicatively.
//   - Otherwise the edge with the smallest measured wait grows into the
//     remaining slack, so throughput-relevant edges earn large batches
//     while wait-sensitive edges stay near instant flushing.
//
// Keeping W_js ≤ Ŵ_js also keeps the Rebalance optimization feasible:
// scaling out cannot reduce batch-induced waiting, only deadlines can.
type BatchingController struct {
	policy BatchingPolicy
	// elastic reports whether a scaler is active: near saturation an
	// elastic job holds its deadlines and lets scaling resolve the
	// overload, while a statically provisioned job grows them — batching
	// is then the only throughput lever (Section III-C).
	elastic bool
	// deadlines holds the current per-constraint, per-edge deadlines.
	deadlines map[string]map[model.EdgeKey]float64
}

// Controller tuning constants.
const (
	// batchShrinkFactor is the multiplicative decrease applied to the
	// worst edge when waits exceed the allowance (mild, to limit
	// oscillation against the 5 s measurement delay).
	batchShrinkFactor = 0.7
	// batchGrowFloor is the minimal additive growth step in seconds, so
	// deadlines can leave zero.
	batchGrowFloor = 200e-6
	// batchSafety is the fraction of ℓ kept as safety margin when growing.
	batchSafety = 0.1
	// batchDeadlineAbsCap is the absolute deadline ceiling in seconds.
	// With the calibrated ~1 ms per-flush cost, batches beyond ~8 items
	// already amortize over 90% of the shipping overhead; longer
	// deadlines only add latency and arrival burstiness, so generous
	// constraints must not inflate them.
	batchDeadlineAbsCap = 10e-3
	// batchWaitTargetFraction is the share of the scaler's queue-wait
	// allowance Ŵ the controller lets batching-induced waits consume.
	// Batch serialization wait does not shrink with parallelism, so it
	// must stay well below Ŵ or the fitted model sees an irreducible
	// wait, overestimates its error coefficient and over-provisions. The
	// batch-induced share of an edge's wait is estimated as the residue
	// of the measured wait over the Kingman utilization-wait prediction.
	batchWaitTargetFraction = 0.5
	// batchDeadlineCapFraction bounds any single edge's deadline relative
	// to its constraint's slack over the fixed task latencies.
	batchDeadlineCapFraction = 0.5
	// batchSaturationRho is the utilization at which waits are treated as
	// capacity-driven rather than batch-driven: above it, shrinking
	// batches can only lower throughput further (Section III-C's regime
	// where "adaptive batching cannot compensate" and the engine batches
	// as much as possible).
	batchSaturationRho = 0.8
	// batchProducerBusyRho protects an edge from deadline shrinking while
	// its producer is substantially busy: shrinking would raise the
	// producer's per-item flush cost and push it into saturation,
	// creating a shrink/saturate/grow limit cycle.
	batchProducerBusyRho = 0.6
)

// NewBatchingController creates a controller with the given policy.
func NewBatchingController(policy BatchingPolicy) *BatchingController {
	return &BatchingController{
		policy:    policy,
		deadlines: make(map[string]map[model.EdgeKey]float64),
	}
}

// SetElastic declares whether an elastic scaler is active.
func (c *BatchingController) SetElastic(elastic bool) { c.elastic = elastic }

// Update consumes a fresh global summary and returns the flush deadline
// per edge; when several constraints cover an edge the smallest deadline
// wins.
func (c *BatchingController) Update(s *Summary, constraints []*model.Constraint) map[model.EdgeKey]float64 {
	out := make(map[model.EdgeKey]float64)
	for _, con := range constraints {
		per := c.updateConstraint(s, con)
		for key, dl := range per {
			if cur, ok := out[key]; !ok || dl < cur {
				out[key] = dl
			}
		}
	}
	return out
}

// updateConstraint runs one controller step for a single constraint.
func (c *BatchingController) updateConstraint(s *Summary, con *model.Constraint) map[model.EdgeKey]float64 {
	edges := con.Sequence.Edges()
	if len(edges) == 0 {
		return nil
	}
	state := c.deadlines[con.Name]
	if state == nil {
		state = make(map[model.EdgeKey]float64, len(edges))
		c.deadlines[con.Name] = state
	}
	est, covered := EstimateSequenceLatency(s, con.Sequence)
	if !covered {
		// No measurements yet: stay at instant flushing.
		for _, key := range edges {
			if _, ok := state[key]; !ok {
				state[key] = 0
			}
		}
		return state
	}

	bound := secondsOf(con.Bound)
	wLimit := c.policy.QueueWaitLimit(s, con)
	slack := bound*(1-batchSafety) - est.Total()

	limit := (bound - est.TaskLatency) * batchDeadlineCapFraction
	if limit > batchDeadlineAbsCap {
		limit = batchDeadlineAbsCap
	}
	if limit < 0 {
		limit = 0
	}

	// Estimate each edge's batch-induced wait residue: measured wait
	// minus the Kingman prediction for the consuming vertex's current
	// utilization. Utilization-driven waiting is the scaler's job; only
	// the batch-induced share is the controller's to remove.
	residues := make(map[model.EdgeKey]float64, len(edges))
	totalResidue := 0.0
	for _, name := range con.Sequence.Vertices() {
		key, ok := con.Sequence.IngoingEdge(name)
		if !ok {
			continue
		}
		es, ok := s.Edges[key]
		if !ok {
			continue
		}
		res := es.QueueWait()
		if vs, ok := s.Vertices[name]; ok {
			wk := kingmanWait(vs)
			if !math.IsInf(wk, 1) {
				res -= wk
			}
		}
		if res < 0 {
			res = 0
		}
		residues[key] = res
		totalResidue += res
	}

	// Locate the edge with the largest batch residue (shrink candidate;
	// edges with substantially busy producers are protected — see
	// batchProducerBusyRho — unless every edge is protected) and the
	// smallest-wait edge that still has room to grow (growth candidate;
	// edges already at the cap cannot absorb more budget).
	producerBusy := func(key model.EdgeKey) bool {
		ps, ok := s.Vertices[key.Source]
		return ok && ps.Utilization() >= batchProducerBusyRho
	}
	worst := edges[0]
	worstW := -1.0
	haveUnprotected := false
	hasBest := false
	var best model.EdgeKey
	bestW := math.Inf(1)
	for _, key := range edges {
		busy := producerBusy(key)
		r := residues[key]
		switch {
		case !busy && !haveUnprotected:
			// First unprotected edge always displaces protected picks.
			worst, worstW = key, r
			haveUnprotected = true
		case !busy && r > worstW:
			worst, worstW = key, r
		case busy && !haveUnprotected && r > worstW:
			worst, worstW = key, r
		}
		if w := s.Edges[key].QueueWait(); w < bestW && state[key] < limit*(1-1e-9) {
			best, bestW = key, w
			hasBest = true
		}
	}
	// A genuine bottleneck shows as near-saturated utilization somewhere
	// in the sequence; only then is a large wait evidence that batching
	// cannot hurt (without saturation, the wait is the batching's own
	// doing and must shrink instead).
	maxRho := 0.0
	for _, name := range con.Sequence.Vertices() {
		if vs, ok := s.Vertices[name]; ok {
			if rho := vs.Utilization(); rho > maxRho {
				maxRho = rho
			}
		}
	}

	// Producer-bound edges: when an edge's producing vertex runs at
	// saturation (its emission loop or upstream UDF cannot keep pace),
	// growing that edge's batching directly raises producer capacity —
	// per-flush overhead amortizes over more items — at modest latency
	// cost. Scaling consumers cannot fix a producer bottleneck.
	grewProducerBound := false
	for _, key := range edges {
		ps, ok := s.Vertices[key.Source]
		if !ok || ps.Utilization() < batchSaturationRho {
			continue
		}
		if state[key] >= limit*(1-1e-9) {
			continue
		}
		state[key] = state[key]*2 + batchGrowFloor
		if state[key] > limit {
			state[key] = limit
		}
		grewProducerBound = true
	}
	if grewProducerBound {
		return state
	}

	switch {
	case maxRho >= batchSaturationRho && c.elastic:
		// Saturation with an active scaler: hold the deadlines. Shrinking
		// would lower capacity while the overload lasts; growing would
		// add batch latency that the imminent scale-out makes
		// unnecessary.
	case est.QueueWait > bound && maxRho >= batchSaturationRho:
		// The queue waits alone exceed the whole bound at saturation: the
		// constraint is currently unattainable (bottleneck/backpressure)
		// and smaller batches would only lower capacity. Batch as much as
		// possible — larger batches amortize shipping overhead and raise
		// effective throughput, which is the fastest way out of the
		// backlog (Section III-C's "batching as much as possible").
		for _, key := range edges {
			dl := state[key]*2 + batchGrowFloor
			if dl > limit {
				dl = limit
			}
			state[key] = dl
		}
	case maxRho >= batchSaturationRho && slack < 0:
		// Near saturation the waits are utilization-driven; batching is
		// the throughput lever, so grow instead of shrink even while the
		// estimate violates the bound.
		for _, key := range edges {
			dl := state[key]*1.5 + batchGrowFloor
			if dl > limit {
				dl = limit
			}
			state[key] = dl
		}
	case totalResidue > wLimit*batchWaitTargetFraction || slack < 0:
		// Batch-induced waits (or total latency) too high but
		// recoverable: shrink the worst offender.
		state[worst] = state[worst] * batchShrinkFactor
		if state[worst] < batchGrowFloor/4 {
			state[worst] = 0
		}
	case slack > 0 && hasBest:
		// Room to batch more: grow every low-residue edge with room,
		// bounded by the shared slack and the per-edge cap. The cap
		// derives from the bound's slack over the fixed task latencies
		// (window-dominated sequences leave little room), so deadlines
		// never grow to magnitudes that alias with window periods.
		budget := 0.4 * slack
		for _, key := range edges {
			if state[key] >= limit*(1-1e-9) {
				continue
			}
			if residues[key] > wLimit*batchWaitTargetFraction/float64(len(edges)) {
				continue // this edge already costs its share of wait
			}
			grow := budget / float64(len(edges))
			if maxStep := 0.5*state[key] + batchGrowFloor; grow > maxStep {
				grow = maxStep
			}
			dl := state[key] + grow
			if dl > limit {
				dl = limit
			}
			state[key] = dl
		}
	}
	_ = best
	return state
}

// Deadline returns the controller's current deadline for an edge under a
// named constraint (diagnostics).
func (c *BatchingController) Deadline(constraint string, edge model.EdgeKey) (float64, bool) {
	per, ok := c.deadlines[constraint]
	if !ok {
		return 0, false
	}
	dl, ok := per[edge]
	return dl, ok
}

// kingmanWait returns the GI/G/1 Kingman approximation for a vertex's
// current per-task load (duplicated from the scaling model to keep the
// qos package dependency-free of internal/core).
func kingmanWait(v VertexStats) float64 {
	rho := v.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 || v.ServiceTimeMean <= 0 {
		return 0
	}
	ca2 := v.InterarrivalCV * v.InterarrivalCV
	cs2 := v.ServiceTimeCV * v.ServiceTimeCV
	return (rho * v.ServiceTimeMean / (1 - rho)) * (ca2 + cs2) / 2
}
