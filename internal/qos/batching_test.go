package qos

import (
	"testing"
	"time"

	"nephelix/internal/model"
)

// controllerFixture builds src -> work -> sink, a 20 ms constraint over
// (src->work, work, work->sink), and a summary generator.
type controllerFixture struct {
	g          *model.JobGraph
	constraint *model.Constraint
	e1, e2     model.EdgeKey
}

func newControllerFixture(t *testing.T) *controllerFixture {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 2},
		{Name: "work", Parallelism: 4, MinParallelism: 1, MaxParallelism: 64},
		{Name: "sink", Parallelism: 2},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	return &controllerFixture{
		g:          g,
		constraint: &model.Constraint{Name: "c", Sequence: seq, Bound: 20 * time.Millisecond, Window: 10 * time.Second},
		e1:         model.EdgeKey{Source: "src", Target: "work"},
		e2:         model.EdgeKey{Source: "work", Target: "sink"},
	}
}

// summary builds a summary with the given work-vertex utilization and
// per-edge (wait, obl) pairs.
func (f *controllerFixture) summary(rho, w1, obl1, w2, obl2 float64) *Summary {
	s := NewSummary()
	svc := 0.004
	s.Vertices["work"] = VertexStats{
		TaskLatency:      svc,
		ServiceTimeMean:  svc,
		ServiceTimeCV:    0.4,
		InterarrivalMean: svc / rho,
		InterarrivalCV:   1.0,
		Parallelism:      4,
	}
	s.Edges[f.e1] = EdgeStats{ChannelLatency: w1 + obl1, OutputBatchLatency: obl1}
	s.Edges[f.e2] = EdgeStats{ChannelLatency: w2 + obl2, OutputBatchLatency: obl2}
	return s
}

func TestControllerUncoveredStaysInstant(t *testing.T) {
	f := newControllerFixture(t)
	c := NewBatchingController(DefaultBatchingPolicy())
	dl := c.Update(NewSummary(), []*model.Constraint{f.constraint})
	if dl[f.e1] != 0 || dl[f.e2] != 0 {
		t.Errorf("uncovered constraint must keep instant flushing: %v", dl)
	}
}

func TestControllerGrowsIntoSlack(t *testing.T) {
	f := newControllerFixture(t)
	c := NewBatchingController(DefaultBatchingPolicy())
	// Low load, tiny waits, no batching yet: lots of slack.
	s := f.summary(0.2, 0.0002, 0, 0.0001, 0)
	var prev1, prev2 float64
	for i := 0; i < 30; i++ {
		dl := c.Update(s, []*model.Constraint{f.constraint})
		if dl[f.e1]+1e-15 < prev1 || dl[f.e2]+1e-15 < prev2 {
			t.Fatalf("iteration %d: deadlines shrank under slack: %v", i, dl)
		}
		prev1, prev2 = dl[f.e1], dl[f.e2]
	}
	if prev1 <= 0 && prev2 <= 0 {
		t.Error("no deadline grew despite slack")
	}
	// The absolute cap bounds any deadline.
	if prev1 > batchDeadlineAbsCap+1e-12 || prev2 > batchDeadlineAbsCap+1e-12 {
		t.Errorf("deadline exceeds absolute cap: %v / %v", prev1, prev2)
	}
}

func TestControllerShrinksOnBatchResidue(t *testing.T) {
	f := newControllerFixture(t)
	c := NewBatchingController(DefaultBatchingPolicy())
	// Grow first.
	low := f.summary(0.2, 0.0002, 0.001, 0.0001, 0.001)
	for i := 0; i < 20; i++ {
		c.Update(low, []*model.Constraint{f.constraint})
	}
	grown, _ := c.Deadline("c", f.e1)
	// Now the work edge shows a large wait at low utilization: batch
	// residue → shrink edge 1.
	high := f.summary(0.2, 0.008, 0.002, 0.0001, 0.001)
	for i := 0; i < 5; i++ {
		c.Update(high, []*model.Constraint{f.constraint})
	}
	shrunk, _ := c.Deadline("c", f.e1)
	if shrunk >= grown {
		t.Errorf("edge 1 deadline did not shrink: %v -> %v", grown, shrunk)
	}
}

func TestControllerHopelessNeedsSaturation(t *testing.T) {
	f := newControllerFixture(t)
	c := NewBatchingController(DefaultBatchingPolicy())
	// Waits above the bound but utilization low: the wait is batching's
	// own doing; deadlines must shrink, not grow.
	s := f.summary(0.3, 0.050, 0.004, 0.001, 0.002)
	for i := 0; i < 3; i++ {
		c.Update(s, []*model.Constraint{f.constraint})
	}
	dl1, _ := c.Deadline("c", f.e1)
	if dl1 != 0 {
		t.Errorf("unsaturated overload must shrink toward instant flush, got %v", dl1)
	}

	// Same waits at saturation: batch as much as possible.
	c2 := NewBatchingController(DefaultBatchingPolicy())
	sat := f.summary(0.99, 0.500, 0.004, 0.100, 0.002)
	var dl map[model.EdgeKey]float64
	for i := 0; i < 10; i++ {
		dl = c2.Update(sat, []*model.Constraint{f.constraint})
	}
	if dl[f.e1] <= 0 || dl[f.e2] <= 0 {
		t.Errorf("saturated overload must batch maximally: %v", dl)
	}
}

func TestControllerStrictestConstraintWins(t *testing.T) {
	f := newControllerFixture(t)
	seqTight, err := model.ParseSequence(f.g, "src->work", "work")
	if err != nil {
		t.Fatal(err)
	}
	tight := &model.Constraint{Name: "tight", Sequence: seqTight, Bound: 2 * time.Millisecond, Window: time.Second}
	c := NewBatchingController(DefaultBatchingPolicy())
	s := f.summary(0.2, 0.0002, 0, 0.0001, 0)
	var dl map[model.EdgeKey]float64
	for i := 0; i < 20; i++ {
		dl = c.Update(s, []*model.Constraint{f.constraint, tight})
	}
	// The 2 ms constraint's cap is (2 − 4) ms < 0 → 0: the shared edge
	// must stay at instant flushing despite the loose constraint.
	if dl[f.e1] != 0 {
		t.Errorf("shared edge ignores the tighter constraint: %v", dl[f.e1])
	}
	if dl[f.e2] <= 0 {
		t.Errorf("unshared edge should still batch: %v", dl[f.e2])
	}
}

func TestControllerDeadlineAccessor(t *testing.T) {
	c := NewBatchingController(DefaultBatchingPolicy())
	if _, ok := c.Deadline("missing", model.EdgeKey{}); ok {
		t.Error("unknown constraint reported a deadline")
	}
}

func TestKingmanWaitHelper(t *testing.T) {
	v := VertexStats{ServiceTimeMean: 0.01, InterarrivalMean: 0.0125, InterarrivalCV: 1, ServiceTimeCV: 1}
	// ρ = 0.8, M/M/1: W = 0.8·0.01/0.2 = 40 ms.
	if got := kingmanWait(v); got < 0.039 || got > 0.041 {
		t.Errorf("kingmanWait: got %v, want ≈0.040", got)
	}
	sat := VertexStats{ServiceTimeMean: 0.01, InterarrivalMean: 0.009}
	if got := kingmanWait(sat); got != got+1 && !(got > 1e308) { // +Inf check
		if got < 1e308 {
			t.Errorf("saturated vertex: got %v, want +Inf", got)
		}
	}
	if got := kingmanWait(VertexStats{}); got != 0 {
		t.Errorf("empty stats: got %v, want 0", got)
	}
}

func TestControllerProducerSaturationGrowth(t *testing.T) {
	f := newControllerFixture(t)
	c := NewBatchingController(DefaultBatchingPolicy())
	c.SetElastic(true)
	// Saturated source (ρ = 1): emission cost equals the interval.
	s := f.summary(0.3, 0.004, 0.0005, 0.0002, 0.0005)
	s.Vertices["src"] = VertexStats{
		TaskLatency: 0.0012, ServiceTimeMean: 0.0012,
		InterarrivalMean: 0.0012, Parallelism: 2,
	}
	var dl map[model.EdgeKey]float64
	for i := 0; i < 8; i++ {
		dl = c.Update(s, []*model.Constraint{f.constraint})
	}
	if dl[f.e1] <= 0 {
		t.Errorf("producer-bound edge did not grow: %v", dl[f.e1])
	}
	// The consumer-side edge (work→sink) is untouched by the
	// producer-bound branch unless its own producer saturates.
	if dl[f.e2] > dl[f.e1] {
		t.Errorf("non-bound edge grew more: e1=%v e2=%v", dl[f.e1], dl[f.e2])
	}
}

func TestControllerProtectsBusyProducersFromShrink(t *testing.T) {
	f := newControllerFixture(t)
	c := NewBatchingController(DefaultBatchingPolicy())
	// Grow both edges first under light load.
	light := f.summary(0.2, 0.0002, 0.001, 0.0001, 0.001)
	for i := 0; i < 20; i++ {
		c.Update(light, []*model.Constraint{f.constraint})
	}
	before1, _ := c.Deadline("c", f.e1)
	// High residues everywhere, but e1's producer is 70% busy: the
	// shrink must pick e2.
	hot := f.summary(0.3, 0.008, 0.001, 0.008, 0.001)
	hot.Vertices["src"] = VertexStats{
		ServiceTimeMean: 0.0007, InterarrivalMean: 0.001, Parallelism: 2,
	}
	c.Update(hot, []*model.Constraint{f.constraint})
	after1, _ := c.Deadline("c", f.e1)
	after2, _ := c.Deadline("c", f.e2)
	if after1 < before1 {
		t.Errorf("protected edge shrank: %v -> %v", before1, after1)
	}
	before2 := before1 // both grew to the same cap under light load
	if after2 >= before2 {
		t.Errorf("unprotected edge did not shrink: %v", after2)
	}
}
