package qos

import (
	"testing"

	"nephelix/internal/model"
)

func taskID(vertex string, idx int) model.TaskID {
	return model.TaskID{Vertex: vertex, Index: idx}
}

func TestTaskReporterIntervalFlow(t *testing.T) {
	r := NewTaskReporter(taskID("v", 0))
	r.RecordArrival(1.000)
	r.RecordArrival(1.010) // interarrival 10 ms
	r.RecordArrival(1.030) // interarrival 20 ms
	r.RecordService(0.002)
	r.RecordService(0.004)
	r.RecordTaskLatency(0.002)

	rep := r.Flush()
	if rep.InterarrivalCount != 2 || !almostEqual(rep.InterarrivalMean, 0.015, 1e-12) {
		t.Errorf("interarrival: count=%d mean=%v", rep.InterarrivalCount, rep.InterarrivalMean)
	}
	if rep.ServiceCount != 2 || !almostEqual(rep.ServiceMean, 0.003, 1e-12) {
		t.Errorf("service: count=%d mean=%v", rep.ServiceCount, rep.ServiceMean)
	}
	if rep.TaskLatencyCount != 1 {
		t.Errorf("task latency count: got %d, want 1", rep.TaskLatencyCount)
	}

	// Interarrival chain survives the flush.
	r.RecordArrival(1.050)
	rep2 := r.Flush()
	if rep2.InterarrivalCount != 1 || !almostEqual(rep2.InterarrivalMean, 0.020, 1e-12) {
		t.Errorf("post-flush interarrival: count=%d mean=%v", rep2.InterarrivalCount, rep2.InterarrivalMean)
	}
}

func TestTaskReporterIgnoresNegative(t *testing.T) {
	r := NewTaskReporter(taskID("v", 0))
	r.RecordService(-1)
	r.RecordTaskLatency(-0.5)
	r.RecordArrival(5)
	r.RecordArrival(4) // time went backwards; ignored
	rep := r.Flush()
	if !rep.Empty() {
		t.Errorf("negative measurements must be dropped: %+v", rep)
	}
}

func TestChannelReporter(t *testing.T) {
	ch := model.ChannelID{Edge: model.EdgeKey{Source: "a", Target: "b"}}
	r := NewChannelReporter(ch)
	r.RecordTransfer(0.010, 0.004)
	r.RecordTransfer(0.020, 0.006)
	rep := r.Flush()
	if rep.LatencyCount != 2 || !almostEqual(rep.LatencyMean, 0.015, 1e-12) {
		t.Errorf("latency: count=%d mean=%v", rep.LatencyCount, rep.LatencyMean)
	}
	if rep.BatchLatencyCount != 2 || !almostEqual(rep.BatchLatencyMean, 0.005, 1e-12) {
		t.Errorf("batch latency: count=%d mean=%v", rep.BatchLatencyCount, rep.BatchLatencyMean)
	}
	if !r.Flush().Empty() {
		t.Error("second flush must be empty")
	}
}

func TestManagerHistoryWindow(t *testing.T) {
	m := NewManager(ManagerConfig{HistoryLength: 2, EvictAfter: 10})
	id := taskID("v", 0)
	// Three reports; only the newest two must contribute.
	for i, svc := range []float64{0.010, 0.020, 0.030} {
		m.ReportTask(TaskReport{Task: id, ServiceCount: 1, ServiceMean: svc, ServiceCV: float64(i)})
	}
	p := m.PartialSummary()
	s := p.Finalize(map[string]int{"v": 1})
	got := s.Vertices["v"].ServiceTimeMean
	if !almostEqual(got, 0.025, 1e-12) {
		t.Errorf("history window: service mean got %v, want 0.025 (mean of last two)", got)
	}
}

func TestManagerEviction(t *testing.T) {
	m := NewManager(ManagerConfig{HistoryLength: 5, EvictAfter: 2})
	m.ReportTask(TaskReport{Task: taskID("v", 0), ServiceCount: 1, ServiceMean: 0.01})
	if m.TrackedTasks() != 1 {
		t.Fatalf("TrackedTasks: got %d, want 1", m.TrackedTasks())
	}
	// Three adjustment intervals without reports evict the task.
	for i := 0; i < 3; i++ {
		_ = m.PartialSummary()
	}
	if m.TrackedTasks() != 0 {
		t.Errorf("idle task not evicted: %d tracked", m.TrackedTasks())
	}
}

func TestManagerIgnoresEmptyReports(t *testing.T) {
	m := NewManager(DefaultManagerConfig())
	m.ReportTask(TaskReport{Task: taskID("v", 0)})
	m.ReportChannel(ChannelReport{Channel: model.ChannelID{}})
	if m.TrackedTasks() != 0 || m.TrackedChannels() != 0 {
		t.Error("empty reports must not create history")
	}
}

func TestManagerForget(t *testing.T) {
	m := NewManager(DefaultManagerConfig())
	id := taskID("v", 3)
	m.ReportTask(TaskReport{Task: id, ServiceCount: 1, ServiceMean: 0.01})
	m.Forget(id)
	if m.TrackedTasks() != 0 {
		t.Error("Forget did not drop task history")
	}
}

func TestMergePartialsAcrossManagers(t *testing.T) {
	// Manager A sees task v[0], manager B sees v[1]; the global summary
	// must average both.
	a := NewManager(DefaultManagerConfig())
	b := NewManager(DefaultManagerConfig())
	a.ReportTask(TaskReport{Task: taskID("v", 0), ServiceCount: 10, ServiceMean: 0.002, InterarrivalCount: 10, InterarrivalMean: 0.008})
	b.ReportTask(TaskReport{Task: taskID("v", 1), ServiceCount: 10, ServiceMean: 0.004, InterarrivalCount: 10, InterarrivalMean: 0.012})
	ch := model.ChannelID{Edge: model.EdgeKey{Source: "u", Target: "v"}, Producer: 0, Consumer: 1}
	b.ReportChannel(ChannelReport{Channel: ch, LatencyCount: 5, LatencyMean: 0.010, BatchLatencyCount: 5, BatchLatencyMean: 0.002})

	global := MergePartials(map[string]int{"v": 2}, a.PartialSummary(), b.PartialSummary(), nil)
	v, ok := global.Vertex("v")
	if !ok {
		t.Fatal("vertex missing from global summary")
	}
	if !almostEqual(v.ServiceTimeMean, 0.003, 1e-12) || !almostEqual(v.InterarrivalMean, 0.010, 1e-12) {
		t.Errorf("global averages: %+v", v)
	}
	if v.Parallelism != 2 {
		t.Errorf("parallelism: got %d, want 2", v.Parallelism)
	}
	e, ok := global.Edge(model.EdgeKey{Source: "u", Target: "v"})
	if !ok || !almostEqual(e.QueueWait(), 0.008, 1e-12) {
		t.Errorf("edge stats: %+v ok=%v", e, ok)
	}
}
