package qos

import (
	"sort"

	"nephelix/internal/model"
)

// ManagerConfig configures a QoS manager.
type ManagerConfig struct {
	// HistoryLength is m, the number of past measurement-interval reports
	// averaged per task/channel (Equation 2). With a 1 s measurement
	// interval and a 5 s adjustment interval the paper's setup corresponds
	// to m = 5.
	HistoryLength int
	// EvictAfter is the number of consecutive adjustment intervals without
	// any report after which a task's or channel's history is dropped
	// (tasks removed by scale-down stop reporting).
	EvictAfter int
}

// DefaultManagerConfig returns the configuration matching the paper's
// evaluation setup.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{HistoryLength: 5, EvictAfter: 3}
}

func (c *ManagerConfig) sanitize() {
	if c.HistoryLength <= 0 {
		c.HistoryLength = 5
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3
	}
}

// taskHistory is the rolling window of recent interval reports for one
// task.
type taskHistory struct {
	reports []TaskReport // ring, newest appended; len <= HistoryLength
	idle    int          // adjustment intervals without a non-empty report
}

// channelHistory is the rolling window of recent interval reports for one
// channel.
type channelHistory struct {
	reports []ChannelReport
	idle    int
}

// Manager is a QoS manager: it receives the interval reports of the QoS
// reporters assigned to it, keeps a short history per task and channel,
// and produces a partial summary once per adjustment interval
// (Section IV-B). It is not safe for concurrent use; callers serialize
// access (the engine runs one manager goroutine, the simulator is
// single-threaded).
type Manager struct {
	cfg             ManagerConfig
	tasks           map[model.TaskID]*taskHistory
	channels        map[model.ChannelID]*channelHistory
	agedOutTasks    int64
	agedOutChannels int64
}

// NewManager creates a manager with the given configuration.
func NewManager(cfg ManagerConfig) *Manager {
	cfg.sanitize()
	return &Manager{
		cfg:      cfg,
		tasks:    make(map[model.TaskID]*taskHistory),
		channels: make(map[model.ChannelID]*channelHistory),
	}
}

// ReportTask folds one task interval report into the manager's history.
// Empty reports are ignored (the task saw no data this interval).
func (m *Manager) ReportTask(r TaskReport) {
	if r.Empty() {
		return
	}
	h := m.tasks[r.Task]
	if h == nil {
		h = &taskHistory{}
		m.tasks[r.Task] = h
	}
	h.reports = append(h.reports, r)
	if len(h.reports) > m.cfg.HistoryLength {
		h.reports = h.reports[len(h.reports)-m.cfg.HistoryLength:]
	}
	h.idle = 0
}

// ReportChannel folds one channel interval report into the history.
func (m *Manager) ReportChannel(r ChannelReport) {
	if r.Empty() {
		return
	}
	h := m.channels[r.Channel]
	if h == nil {
		h = &channelHistory{}
		m.channels[r.Channel] = h
	}
	h.reports = append(h.reports, r)
	if len(h.reports) > m.cfg.HistoryLength {
		h.reports = h.reports[len(h.reports)-m.cfg.HistoryLength:]
	}
	h.idle = 0
}

// Forget drops the history of a task (e.g. after scale-down removed it).
func (m *Manager) Forget(task model.TaskID) { delete(m.tasks, task) }

// ForgetChannel drops the history of a channel.
func (m *Manager) ForgetChannel(ch model.ChannelID) { delete(m.channels, ch) }

// AgedOut returns how many task and channel histories ageOut has evicted
// since the manager was created. Histories age out when their reporter
// stops reporting — scale-down is the benign cause, a crashed task the
// malign one — so a climbing counter with stable parallelism is the
// observable symptom of dead reporters.
func (m *Manager) AgedOut() (tasks, channels int64) {
	return m.agedOutTasks, m.agedOutChannels
}

// TrackedTasks returns the number of tasks with live history.
func (m *Manager) TrackedTasks() int { return len(m.tasks) }

// TrackedChannels returns the number of channels with live history.
func (m *Manager) TrackedChannels() int { return len(m.channels) }

// PartialSummary aggregates the current histories into a partial summary
// (one entry per job vertex / job edge, averaged over the tasks and
// channels this manager observes) and ages out idle histories.
// Iteration is in sorted id order so that floating-point accumulation is
// deterministic across runs.
func (m *Manager) PartialSummary() *PartialSummary {
	p := NewPartialSummary()
	taskIDs := make([]model.TaskID, 0, len(m.tasks))
	for id := range m.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Slice(taskIDs, func(i, j int) bool {
		if taskIDs[i].Vertex != taskIDs[j].Vertex {
			return taskIDs[i].Vertex < taskIDs[j].Vertex
		}
		return taskIDs[i].Index < taskIDs[j].Index
	})
	for _, id := range taskIDs {
		h := m.tasks[id]
		if len(h.reports) == 0 {
			continue
		}
		var (
			latSum, latN   float64
			svcSum, svcCV  float64
			svcN           float64
			arrSum, arrCV  float64
			arrN           float64
			samples        int64
			taskContribute bool
		)
		for _, r := range h.reports {
			if r.TaskLatencyCount > 0 {
				latSum += r.TaskLatencyMean
				latN++
			}
			if r.ServiceCount > 0 {
				svcSum += r.ServiceMean
				svcCV += r.ServiceCV
				svcN++
			}
			if r.InterarrivalCount > 0 {
				arrSum += r.InterarrivalMean
				arrCV += r.InterarrivalCV
				arrN++
			}
			samples += r.TaskLatencyCount + r.ServiceCount + r.InterarrivalCount
			taskContribute = true
		}
		if !taskContribute {
			continue
		}
		var lat, svc, scv, arr, acv float64
		if latN > 0 {
			lat = latSum / latN
		}
		if svcN > 0 {
			svc = svcSum / svcN
			scv = svcCV / svcN
		}
		if arrN > 0 {
			arr = arrSum / arrN
			acv = arrCV / arrN
		}
		p.AddTask(id.Vertex, lat, svc, scv, arr, acv, samples)
		// idle is reset on every report and incremented once per
		// adjustment interval by ageOut, so idle == 0 means the task
		// reported within the current interval.
		if h.idle == 0 {
			p.MarkTaskFresh(id.Vertex)
		}
	}
	chanIDs := make([]model.ChannelID, 0, len(m.channels))
	for id := range m.channels {
		chanIDs = append(chanIDs, id)
	}
	sort.Slice(chanIDs, func(i, j int) bool { return chanIDs[i].String() < chanIDs[j].String() })
	for _, id := range chanIDs {
		h := m.channels[id]
		if len(h.reports) == 0 {
			continue
		}
		var latSum, latN, oblSum, oblN float64
		var samples int64
		for _, r := range h.reports {
			if r.LatencyCount > 0 {
				latSum += r.LatencyMean
				latN++
			}
			if r.BatchLatencyCount > 0 {
				oblSum += r.BatchLatencyMean
				oblN++
			}
			samples += r.LatencyCount
		}
		if latN == 0 && oblN == 0 {
			continue
		}
		var lat, obl float64
		if latN > 0 {
			lat = latSum / latN
		}
		if oblN > 0 {
			obl = oblSum / oblN
		}
		p.AddChannel(id.Edge, lat, obl, samples)
		if h.idle == 0 {
			p.MarkChannelFresh(id.Edge)
		}
	}
	m.ageOut()
	return p
}

// ageOut increments idle counters and evicts long-idle histories.
func (m *Manager) ageOut() {
	for id, h := range m.tasks {
		h.idle++
		if h.idle > m.cfg.EvictAfter {
			delete(m.tasks, id)
			m.agedOutTasks++
		}
	}
	for id, h := range m.channels {
		h.idle++
		if h.idle > m.cfg.EvictAfter {
			delete(m.channels, id)
			m.agedOutChannels++
		}
	}
}

// MergePartials merges any number of partial summaries and finalizes them
// into a global summary using the authoritative parallelism map. This is
// the master-node side of the summary pipeline.
func MergePartials(parallelism map[string]int, partials ...*PartialSummary) *Summary {
	merged := NewPartialSummary()
	for _, p := range partials {
		if p != nil {
			merged.Merge(p)
		}
	}
	return merged.Finalize(parallelism)
}
