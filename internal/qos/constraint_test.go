package qos

import (
	"testing"
	"time"

	"nephelix/internal/model"
)

// pipeline builds src -> work -> sink and a constraint over
// (src->work, work, work->sink).
func pipeline(t *testing.T, bound time.Duration) (*model.JobGraph, *model.Constraint) {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1},
		{Name: "work", Parallelism: 4, MinParallelism: 1, MaxParallelism: 16},
		{Name: "sink", Parallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	c := &model.Constraint{Name: "c", Sequence: seq, Bound: bound, Window: 10 * time.Second}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, c
}

func summaryFor(taskLat, chanLat, batchLat float64) *Summary {
	s := NewSummary()
	s.Vertices["work"] = VertexStats{TaskLatency: taskLat, ServiceTimeMean: taskLat, InterarrivalMean: taskLat * 2, Parallelism: 4}
	s.Edges[model.EdgeKey{Source: "src", Target: "work"}] = EdgeStats{ChannelLatency: chanLat, OutputBatchLatency: batchLat}
	s.Edges[model.EdgeKey{Source: "work", Target: "sink"}] = EdgeStats{ChannelLatency: chanLat, OutputBatchLatency: batchLat}
	return s
}

func TestEstimateSequenceLatency(t *testing.T) {
	_, c := pipeline(t, 20*time.Millisecond)
	s := summaryFor(0.002, 0.006, 0.004)
	est, ok := EstimateSequenceLatency(s, c.Sequence)
	if !ok {
		t.Fatal("summary should cover sequence")
	}
	if !almostEqual(est.TaskLatency, 0.002, 1e-12) {
		t.Errorf("task latency: got %v", est.TaskLatency)
	}
	if !almostEqual(est.QueueWait, 0.004, 1e-12) { // 2 edges × (6−4) ms
		t.Errorf("queue wait: got %v", est.QueueWait)
	}
	if !almostEqual(est.BatchLatency, 0.008, 1e-12) { // 2 edges × 4 ms
		t.Errorf("batch latency: got %v", est.BatchLatency)
	}
	if !almostEqual(est.Total(), 0.014, 1e-12) {
		t.Errorf("total: got %v", est.Total())
	}
}

func TestEstimateSequenceLatencyUncovered(t *testing.T) {
	_, c := pipeline(t, 20*time.Millisecond)
	if _, ok := EstimateSequenceLatency(NewSummary(), c.Sequence); ok {
		t.Error("empty summary must not produce estimate")
	}
}

func TestCheckConstraint(t *testing.T) {
	_, c := pipeline(t, 10*time.Millisecond)
	tests := []struct {
		name     string
		summary  *Summary
		violated bool
	}{
		{name: "within bound", summary: summaryFor(0.001, 0.002, 0.001), violated: false},
		{name: "violated", summary: summaryFor(0.004, 0.006, 0.001), violated: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := CheckConstraint(tt.summary, c)
			if !st.Covered {
				t.Fatal("constraint not covered")
			}
			if st.Violated != tt.violated {
				t.Errorf("Violated: got %v (total %v), want %v", st.Violated, st.Estimate.Total(), tt.violated)
			}
		})
	}
}

func TestQueueWaitLimit(t *testing.T) {
	_, c := pipeline(t, 20*time.Millisecond)
	s := summaryFor(0.005, 0, 0) // Σ l_jv = 5 ms
	p := DefaultBatchingPolicy()
	// Ŵ = 0.2 × (20 − 5) ms = 3 ms
	if got := p.QueueWaitLimit(s, c); !almostEqual(got, 0.003, 1e-12) {
		t.Errorf("QueueWaitLimit: got %v, want 0.003", got)
	}
	// Task latency above the bound floors the budget at zero.
	s = summaryFor(0.050, 0, 0)
	if got := p.QueueWaitLimit(s, c); got != 0 {
		t.Errorf("exhausted budget: got %v, want 0", got)
	}
}

func TestFlushDeadlines(t *testing.T) {
	_, c := pipeline(t, 20*time.Millisecond)
	s := summaryFor(0.005, 0, 0)
	p := DefaultBatchingPolicy()
	dl := p.FlushDeadlines(s, []*model.Constraint{c})
	// Batching budget = 0.8 × 15 ms = 12 ms over 2 edges → 6 ms each.
	for _, key := range c.Sequence.Edges() {
		if got := dl[key]; !almostEqual(got, 0.006, 1e-12) {
			t.Errorf("deadline %s: got %v, want 0.006", key, got)
		}
	}
}

func TestFlushDeadlinesStrictestWins(t *testing.T) {
	g, c1 := pipeline(t, 20*time.Millisecond)
	seq2, err := model.ParseSequence(g, "src->work", "work")
	if err != nil {
		t.Fatal(err)
	}
	c2 := &model.Constraint{Name: "tight", Sequence: seq2, Bound: 5 * time.Millisecond, Window: time.Second}
	s := summaryFor(0.001, 0, 0)
	dl := DefaultBatchingPolicy().FlushDeadlines(s, []*model.Constraint{c1, c2})
	shared := model.EdgeKey{Source: "src", Target: "work"}
	// c2 budget: 0.8 × (5−1) ms / 1 edge = 3.2 ms < c1's per-edge share.
	if got := dl[shared]; !almostEqual(got, 0.0032, 1e-12) {
		t.Errorf("shared edge deadline: got %v, want 0.0032", got)
	}
}
