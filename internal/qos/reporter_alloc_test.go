package qos

import (
	"testing"

	"nephelix/internal/model"
)

// TestReporterFastPathAllocs pins the zero-allocation contract of the
// per-record reporter methods: the engine's data plane calls
// RecordArrival, RecordService and RecordTaskLatency once per record and
// RecordTransfer once per batch, so any allocation here multiplies by
// the stream rate. Only Flush (once per measurement interval) may
// allocate.
func TestReporterFastPathAllocs(t *testing.T) {
	tr := NewTaskReporter(model.TaskID{Vertex: "v", Index: 0})
	cr := NewChannelReporter(model.ChannelID{Edge: model.EdgeKey{Source: "a", Target: "b"}})

	now := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		now += 0.001
		tr.RecordArrival(now)
		tr.RecordService(0.0005)
		tr.RecordTaskLatency(0.0005)
		cr.RecordTransfer(0.002, 0.001)
	}); allocs != 0 {
		t.Errorf("reporter fast path allocates: %.2f allocs/record, want 0", allocs)
	}
}
