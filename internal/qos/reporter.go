package qos

import (
	"nephelix/internal/metrics"
	"nephelix/internal/metrics/sketch"
	"nephelix/internal/model"
)

// TaskReport is the per-measurement-interval aggregate a QoS reporter
// emits for one task: the sampled means (and coefficients of variation)
// of the task-level metrics of Table I.
type TaskReport struct {
	Task model.TaskID

	TaskLatencyCount int64
	TaskLatencyMean  float64

	ServiceCount int64
	ServiceMean  float64
	ServiceCV    float64

	InterarrivalCount int64
	InterarrivalMean  float64
	InterarrivalCV    float64
}

// Empty reports whether the interval carried no measurements at all.
func (r TaskReport) Empty() bool {
	return r.TaskLatencyCount == 0 && r.ServiceCount == 0 && r.InterarrivalCount == 0
}

// ChannelReport is the per-measurement-interval aggregate for one channel:
// sampled mean channel latency l_e and output batch latency obl_e.
type ChannelReport struct {
	Channel model.ChannelID

	LatencyCount int64
	LatencyMean  float64

	BatchLatencyCount int64
	BatchLatencyMean  float64
}

// Empty reports whether the interval carried no measurements.
func (r ChannelReport) Empty() bool {
	return r.LatencyCount == 0 && r.BatchLatencyCount == 0
}

// TaskReporter instruments a single task. It is not safe for concurrent
// use: it is owned by the goroutine (or simulator event loop) executing
// the task. Latencies are recorded in seconds.
type TaskReporter struct {
	task         model.TaskID
	taskLatency  metrics.IntervalStats
	service      metrics.IntervalStats
	interarrival metrics.IntervalStats
	lastArrival  float64
	hasArrival   bool
	// tail, when enabled, accumulates the run-cumulative service-time
	// distribution in a mergeable quantile sketch — the per-task tail
	// substrate for percentile-aware scaling. Off by default: the
	// interval reports stay mean-only and the fast path untouched.
	tail *sketch.Sketch
}

// EnableTailTracking attaches a cumulative service-time quantile sketch
// with relative-error bound alpha (sketch.DefaultAlpha when <= 0).
// Unlike the interval accumulators it is NOT reset by Flush; merge
// sketches across tasks with ServiceTail().Merge for an exact vertex
// distribution.
func (r *TaskReporter) EnableTailTracking(alpha float64) {
	if r.tail == nil {
		r.tail = sketch.New(alpha)
	}
}

// ServiceTail returns the cumulative service-time sketch, or nil when
// tail tracking is disabled.
func (r *TaskReporter) ServiceTail() *sketch.Sketch { return r.tail }

// NewTaskReporter creates a reporter for the given task.
func NewTaskReporter(task model.TaskID) *TaskReporter {
	return &TaskReporter{task: task}
}

// Task returns the instrumented task's id.
func (r *TaskReporter) Task() model.TaskID { return r.task }

// RecordArrival notes that a data item was consumed at time now and
// derives the interarrival time from the previous arrival.
func (r *TaskReporter) RecordArrival(now float64) {
	if r.hasArrival {
		if d := now - r.lastArrival; d >= 0 {
			r.interarrival.Add(d)
		}
	}
	r.lastArrival = now
	r.hasArrival = true
}

// RecordService records one sampled service time (the time the task was
// busy with a data item, equal to read-ready task latency).
func (r *TaskReporter) RecordService(d float64) {
	if d >= 0 {
		r.service.Add(d)
		if r.tail != nil {
			r.tail.Add(d)
		}
	}
}

// RecordTaskLatency records one sampled task latency; for read-ready UDFs
// this equals the service time, for read-write UDFs it is the
// consume-to-next-write time.
func (r *TaskReporter) RecordTaskLatency(d float64) {
	if d >= 0 {
		r.taskLatency.Add(d)
	}
}

// Flush emits the interval report and resets the interval accumulators.
// The interarrival chain (time of last arrival) survives the flush so the
// first arrival of the next interval still yields a sample.
func (r *TaskReporter) Flush() TaskReport {
	rep := TaskReport{Task: r.task}
	rep.TaskLatencyCount, rep.TaskLatencyMean, _ = r.taskLatency.Snapshot()
	rep.ServiceCount, rep.ServiceMean, rep.ServiceCV = r.service.Snapshot()
	rep.InterarrivalCount, rep.InterarrivalMean, rep.InterarrivalCV = r.interarrival.Snapshot()
	return rep
}

// ChannelReporter instruments a single channel. Like TaskReporter it is
// owned by one goroutine (the consumer side records transfers).
type ChannelReporter struct {
	channel      model.ChannelID
	latency      metrics.IntervalStats
	batchLatency metrics.IntervalStats
	// tail mirrors TaskReporter.tail for the channel-latency
	// distribution; nil unless EnableTailTracking was called.
	tail *sketch.Sketch
}

// EnableTailTracking attaches a cumulative channel-latency quantile
// sketch with relative-error bound alpha (sketch.DefaultAlpha when
// <= 0). Not reset by Flush; mergeable across channels.
func (r *ChannelReporter) EnableTailTracking(alpha float64) {
	if r.tail == nil {
		r.tail = sketch.New(alpha)
	}
}

// LatencyTail returns the cumulative channel-latency sketch, or nil
// when tail tracking is disabled.
func (r *ChannelReporter) LatencyTail() *sketch.Sketch { return r.tail }

// NewChannelReporter creates a reporter for the given channel.
func NewChannelReporter(channel model.ChannelID) *ChannelReporter {
	return &ChannelReporter{channel: channel}
}

// Channel returns the instrumented channel's id.
func (r *ChannelReporter) Channel() model.ChannelID { return r.channel }

// RecordTransfer records one sampled item transfer: latency is the full
// channel latency (emit to consume), batchLatency the portion spent
// waiting in the producer's output buffer.
func (r *ChannelReporter) RecordTransfer(latency, batchLatency float64) {
	if latency >= 0 {
		r.latency.Add(latency)
		if r.tail != nil {
			r.tail.Add(latency)
		}
	}
	if batchLatency >= 0 {
		r.batchLatency.Add(batchLatency)
	}
}

// Flush emits the interval report and resets the accumulators.
func (r *ChannelReporter) Flush() ChannelReport {
	rep := ChannelReport{Channel: r.channel}
	rep.LatencyCount, rep.LatencyMean, _ = r.latency.Snapshot()
	rep.BatchLatencyCount, rep.BatchLatencyMean, _ = r.batchLatency.Snapshot()
	return rep
}
