package qos

import (
	"bytes"
	"math/rand"
	"testing"

	"nephelix/internal/metrics/sketch"
	"nephelix/internal/model"
)

// TestReporterTailTracking covers the opt-in cumulative tail sketches on
// the QoS reporters: nil when disabled, fed by the record fast path when
// enabled, surviving Flush, and merging across reporters byte-identically
// to a single-stream ingest.
func TestReporterTailTracking(t *testing.T) {
	tr := NewTaskReporter(model.TaskID{Vertex: "v", Index: 0})
	cr := NewChannelReporter(model.ChannelID{Edge: model.EdgeKey{Source: "a", Target: "b"}})
	if tr.ServiceTail() != nil || cr.LatencyTail() != nil {
		t.Fatal("tail sketches must be nil before EnableTailTracking")
	}
	tr.RecordService(0.01)
	cr.RecordTransfer(0.02, 0.001)

	tr.EnableTailTracking(0)
	cr.EnableTailTracking(0)
	tr.EnableTailTracking(0) // idempotent
	if tr.ServiceTail() == nil || cr.LatencyTail() == nil {
		t.Fatal("tail sketches missing after EnableTailTracking")
	}
	if tr.ServiceTail().Alpha() != sketch.DefaultAlpha {
		t.Fatalf("alpha = %v, want DefaultAlpha", tr.ServiceTail().Alpha())
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tr.RecordService(0.001 + rng.Float64()*0.1)
		cr.RecordTransfer(0.002+rng.Float64()*0.05, 0.001)
	}
	if got := tr.ServiceTail().Count(); got != 500 {
		t.Fatalf("service tail count = %d, want 500 (pre-enable samples excluded)", got)
	}
	if got := cr.LatencyTail().Count(); got != 500 {
		t.Fatalf("latency tail count = %d, want 500", got)
	}

	// Flush resets the interval accumulators but not the tail sketch.
	tr.Flush()
	cr.Flush()
	if tr.ServiceTail().Count() != 500 || cr.LatencyTail().Count() != 500 {
		t.Fatal("Flush must not reset the cumulative tail sketches")
	}

	// Negative samples are rejected on the same guard as the interval stats.
	tr.RecordService(-1)
	cr.RecordTransfer(-1, 0.001)
	if tr.ServiceTail().Count() != 500 || cr.LatencyTail().Count() != 500 {
		t.Fatal("negative samples must not reach the tail sketch")
	}

	// Merging two task reporters' tails is byte-identical to ingesting
	// the concatenated stream into one sketch.
	a := NewTaskReporter(model.TaskID{Vertex: "v", Index: 1})
	b := NewTaskReporter(model.TaskID{Vertex: "v", Index: 2})
	a.EnableTailTracking(0)
	b.EnableTailTracking(0)
	whole := sketch.NewDefault()
	rng = rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		v := 0.0005 + rng.Float64()*0.2
		if i%2 == 0 {
			a.RecordService(v)
		} else {
			b.RecordService(v)
		}
		whole.Add(v)
	}
	merged := a.ServiceTail().Clone()
	merged.Merge(b.ServiceTail())
	mb, err := merged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := whole.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, wb) {
		t.Fatal("merged per-task tails differ from single-stream sketch")
	}
}

// TestReporterTailFastPathAllocs pins that enabling tail tracking keeps
// the per-record path allocation-free in steady state (after the sketch
// bucket slab has grown to cover the value range).
func TestReporterTailFastPathAllocs(t *testing.T) {
	tr := NewTaskReporter(model.TaskID{Vertex: "v", Index: 0})
	cr := NewChannelReporter(model.ChannelID{Edge: model.EdgeKey{Source: "a", Target: "b"}})
	tr.EnableTailTracking(0)
	cr.EnableTailTracking(0)

	// Warm up: let the sketches allocate buckets for the value range.
	for i := 1; i <= 100; i++ {
		v := float64(i) * 0.0001
		tr.RecordService(v)
		cr.RecordTransfer(v, v)
	}

	now, i := 0.0, 0
	if allocs := testing.AllocsPerRun(1000, func() {
		now += 0.001
		i = (i % 100) + 1
		v := float64(i) * 0.0001
		tr.RecordArrival(now)
		tr.RecordService(v)
		tr.RecordTaskLatency(v)
		cr.RecordTransfer(v, v)
	}); allocs != 0 {
		t.Errorf("tail-enabled reporter fast path allocates: %.2f allocs/record, want 0", allocs)
	}
}
