package qos

import (
	"time"

	"nephelix/internal/model"
)

// secondsOf converts a duration to float64 seconds.
func secondsOf(d time.Duration) float64 { return d.Seconds() }

// SequenceLatencyEstimate is the decomposition of a constrained sequence's
// estimated mean latency, derived from a summary.
type SequenceLatencyEstimate struct {
	// TaskLatency is Σ l_jv over the sequence's vertices.
	TaskLatency float64
	// QueueWait is Σ (l_je − obl_je) over the sequence's edges: the time
	// spent waiting in input queues.
	QueueWait float64
	// BatchLatency is Σ obl_je: the time spent in output buffers due to
	// (deliberate) batching.
	BatchLatency float64
}

// Total returns the estimated mean sequence latency.
func (e SequenceLatencyEstimate) Total() float64 {
	return e.TaskLatency + e.QueueWait + e.BatchLatency
}

// EstimateSequenceLatency decomposes the sequence's mean latency using the
// summary's vertex and edge entries. The second return value is false if
// the summary does not cover the whole sequence.
func EstimateSequenceLatency(s *Summary, seq *model.Sequence) (SequenceLatencyEstimate, bool) {
	var est SequenceLatencyEstimate
	if !s.Covers(seq) {
		return est, false
	}
	for _, name := range seq.Vertices() {
		est.TaskLatency += s.Vertices[name].TaskLatency
	}
	for _, key := range seq.Edges() {
		e := s.Edges[key]
		est.QueueWait += e.QueueWait()
		est.BatchLatency += e.OutputBatchLatency
	}
	return est, true
}

// ConstraintStatus is the result of checking one latency constraint
// against a summary.
type ConstraintStatus struct {
	Constraint *model.Constraint
	Estimate   SequenceLatencyEstimate
	// Covered is false when measurement data for parts of the sequence is
	// missing (e.g. right after job start).
	Covered bool
	// Violated is true when the estimated mean sequence latency exceeds
	// the constraint's bound.
	Violated bool
}

// CheckConstraint evaluates one constraint against a summary.
func CheckConstraint(s *Summary, c *model.Constraint) ConstraintStatus {
	est, ok := EstimateSequenceLatency(s, c.Sequence)
	return ConstraintStatus{
		Constraint: c,
		Estimate:   est,
		Covered:    ok,
		Violated:   ok && est.Total() > secondsOf(c.Bound),
	}
}

// BatchingPolicy computes per-edge output-batching flush deadlines from
// latency constraints (the adaptive output batching of the authors' prior
// work, used here as a substrate). Per Section IV-F, a fraction of the
// remaining budget ℓ − Σ l_jv is reserved as queue-wait headroom
// (QueueWaitFraction, default 0.2) and the rest is spent on batching,
// spread evenly over the sequence's edges.
type BatchingPolicy struct {
	// QueueWaitFraction is the share of the non-task-latency budget
	// reserved for queue waiting time (Ŵ_js); the remainder is the
	// batching budget. Default 0.2.
	QueueWaitFraction float64
}

// DefaultBatchingPolicy returns the policy with the paper's 20/80 split.
func DefaultBatchingPolicy() BatchingPolicy {
	return BatchingPolicy{QueueWaitFraction: 0.2}
}

// QueueWaitLimit returns Ŵ_js = f·(ℓ − Σ l_jv) for the constraint, given
// the summary's task latencies (Algorithm 2, line 7). The result is
// floored at 0; a zero limit means the constraint cannot be met by
// controlling queueing alone.
func (p BatchingPolicy) QueueWaitLimit(s *Summary, c *model.Constraint) float64 {
	budget := secondsOf(c.Bound)
	for _, name := range c.Sequence.Vertices() {
		if v, ok := s.Vertices[name]; ok {
			budget -= v.TaskLatency
		}
	}
	if budget < 0 {
		budget = 0
	}
	f := p.QueueWaitFraction
	if f <= 0 || f >= 1 {
		f = 0.2
	}
	return f * budget
}

// FlushDeadlines computes the output-batching deadline for every edge of
// every constrained sequence. Adaptive output batching is a feedback
// controller: the budget spent on batching is what remains of ℓ after the
// measured task latencies AND the measured queue waiting times, spread
// evenly over the sequence's edges. Subtracting the measured waits is
// essential — batching itself makes arrivals bursty and thereby grows
// queue waits, so when waits grow the deadlines must shrink until the
// loop settles with the sequence latency at ≈ ℓ. A small fraction f of
// the wait-free budget stays reserved as headroom (mirroring the 20/80
// split of Section IV-F). When multiple constraints cover the same edge
// the strictest (smallest) deadline wins; exhausted budgets yield
// deadline 0 (instant flush).
func (p BatchingPolicy) FlushDeadlines(s *Summary, constraints []*model.Constraint) map[model.EdgeKey]float64 {
	deadlines := make(map[model.EdgeKey]float64)
	f := p.QueueWaitFraction
	if f <= 0 || f >= 1 {
		f = 0.2
	}
	for _, c := range constraints {
		budget := secondsOf(c.Bound)
		for _, name := range c.Sequence.Vertices() {
			if v, ok := s.Vertices[name]; ok {
				budget -= v.TaskLatency
			}
		}
		headroom := f * budget
		for _, key := range c.Sequence.Edges() {
			if e, ok := s.Edges[key]; ok {
				budget -= e.QueueWait()
			}
		}
		budget -= headroom
		if budget < 0 {
			budget = 0
		}
		edges := c.Sequence.Edges()
		if len(edges) == 0 {
			continue
		}
		perEdge := budget / float64(len(edges))
		for _, key := range edges {
			if cur, ok := deadlines[key]; !ok || perEdge < cur {
				deadlines[key] = perEdge
			}
		}
	}
	return deadlines
}
