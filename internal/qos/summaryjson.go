package qos

import (
	"encoding/json"
	"fmt"

	"nephelix/internal/model"
)

// summaryJSON is the wire form of a Summary: the edge map is keyed by
// EdgeKey.String() ("source->target") because JSON objects only take
// string keys.
type summaryJSON struct {
	Vertices map[string]VertexStats `json:"vertices"`
	Edges    map[string]EdgeStats   `json:"edges"`
}

// MarshalJSON renders the summary with edge keys in "source->target"
// form, so summaries embed cleanly into decision logs and trace reports.
func (s *Summary) MarshalJSON() ([]byte, error) {
	out := summaryJSON{
		Vertices: s.Vertices,
		Edges:    make(map[string]EdgeStats, len(s.Edges)),
	}
	for k, e := range s.Edges {
		out.Edges[k.String()] = e
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the MarshalJSON form back, reconstructing the
// typed edge keys.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var in summaryJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.Vertices = in.Vertices
	if s.Vertices == nil {
		s.Vertices = make(map[string]VertexStats)
	}
	s.Edges = make(map[model.EdgeKey]EdgeStats, len(in.Edges))
	for ks, e := range in.Edges {
		k, err := model.ParseEdgeKey(ks)
		if err != nil {
			return fmt.Errorf("qos: summary edge key: %w", err)
		}
		s.Edges[k] = e
	}
	return nil
}
