// Package qos implements the measurement plane of Section IV-B/IV-C: QoS
// reporters sample task and channel performance metrics (Table I), QoS
// managers aggregate them into partial summaries, and the master node
// merges partial summaries into the global summary that initializes the
// latency model.
//
// All latencies and times are float64 seconds; rates are events/second.
package qos

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nephelix/internal/model"
)

// VertexStats holds the per-job-vertex entries of a summary: the averages,
// over the vertex's tasks, of the task-level measurements of Table I.
type VertexStats struct {
	// TaskLatency is the mean task latency l_jv (read-ready or read-write
	// depending on the vertex's UDF).
	TaskLatency float64
	// ServiceTimeMean and ServiceTimeCV describe the service time S_jv:
	// how long a task is busy with a data item.
	ServiceTimeMean float64
	ServiceTimeCV   float64
	// InterarrivalMean and InterarrivalCV describe the per-task data item
	// interarrival time A_jv.
	InterarrivalMean float64
	InterarrivalCV   float64
	// Parallelism is the degree of parallelism p_jv at measurement time.
	Parallelism int
	// Tasks is the number of task histories aggregated into the stats.
	// After a crash it exceeds Parallelism until the dead task's history
	// ages out of its manager.
	Tasks int
	// Samples counts the underlying raw measurements.
	Samples int64
	// FreshTasks is the number of tasks whose reporters delivered a
	// report within the last adjustment interval. When tasks crash their
	// stale history keeps contributing to the averages until it ages out,
	// but FreshTasks drops immediately — the scaler uses the gap between
	// FreshTasks and Parallelism to detect partial measurements.
	FreshTasks int
}

// ArrivalRate returns λ_jv = 1/Ā_jv, the mean per-task data item arrival
// rate, or 0 when no interarrival measurements exist.
func (s VertexStats) ArrivalRate() float64 {
	if s.InterarrivalMean <= 0 {
		return 0
	}
	return 1 / s.InterarrivalMean
}

// ServiceRate returns μ_jv = 1/S̄_jv, the mean per-task maximum processing
// rate, or +Inf when the service time is 0.
func (s VertexStats) ServiceRate() float64 {
	if s.ServiceTimeMean <= 0 {
		return math.Inf(1)
	}
	return 1 / s.ServiceTimeMean
}

// Utilization returns ρ_jv = λ_jv · S̄_jv. Values at or above 1 indicate a
// bottleneck (possibly measured during queue growth, see Section IV-E).
func (s VertexStats) Utilization() float64 {
	return s.ArrivalRate() * s.ServiceTimeMean
}

// EdgeStats holds the per-job-edge entries of a summary.
type EdgeStats struct {
	// ChannelLatency is the mean channel latency l_je: emission into the
	// channel until consumption from it.
	ChannelLatency float64
	// OutputBatchLatency is the mean output batch latency obl_je: the time
	// items wait in the output buffer before being shipped. It is always
	// at most ChannelLatency.
	OutputBatchLatency float64
	// Samples counts the underlying raw measurements.
	Samples int64
	// FreshChannels is the number of channels with a report within the
	// last adjustment interval (see VertexStats.FreshTasks).
	FreshChannels int
}

// QueueWait returns the measured queue waiting time attributed to the
// consumer vertex: W = l_je − obl_je (Section IV-C2), floored at 0.
func (s EdgeStats) QueueWait() float64 {
	w := s.ChannelLatency - s.OutputBatchLatency
	if w < 0 {
		return 0
	}
	return w
}

// Summary is a global (or partial) summary: per-vertex and per-edge
// aggregated measurement data for the constrained parts of a job.
type Summary struct {
	Vertices map[string]VertexStats
	Edges    map[model.EdgeKey]EdgeStats
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{
		Vertices: make(map[string]VertexStats),
		Edges:    make(map[model.EdgeKey]EdgeStats),
	}
}

// Vertex returns the stats for a vertex and whether they are present.
func (s *Summary) Vertex(name string) (VertexStats, bool) {
	v, ok := s.Vertices[name]
	return v, ok
}

// Edge returns the stats for an edge and whether they are present.
func (s *Summary) Edge(key model.EdgeKey) (EdgeStats, bool) {
	e, ok := s.Edges[key]
	return e, ok
}

// Covers reports whether the summary has entries for every vertex and edge
// of the given sequence, which is required before the latency model can be
// initialized from it.
func (s *Summary) Covers(seq *model.Sequence) bool {
	for _, name := range seq.Vertices() {
		if _, ok := s.Vertices[name]; !ok {
			return false
		}
	}
	for _, key := range seq.Edges() {
		if _, ok := s.Edges[key]; !ok {
			return false
		}
	}
	return true
}

// SequenceCoverage returns the fraction of the sequence's task slots that
// have fresh QoS reports: Σ min(FreshTasks, Parallelism) over the
// sequence's vertices divided by Σ Parallelism. A vertex missing from the
// summary counts as fully stale, so a sequence whose reporters all died
// has coverage 0. The scaler holds scale-downs when coverage drops below
// its threshold (a crashed reporter must never trigger a
// latency-violating scale-down).
func (s *Summary) SequenceCoverage(seq *model.Sequence) float64 {
	total, fresh := 0, 0
	for _, name := range seq.Vertices() {
		v, ok := s.Vertices[name]
		if !ok || v.Parallelism <= 0 {
			// Unknown parallelism: treat the vertex as one fully stale
			// slot so missing vertices drag coverage down instead of
			// vanishing from the denominator.
			total++
			continue
		}
		total += v.Parallelism
		f := v.FreshTasks
		if f > v.Parallelism {
			f = v.Parallelism
		}
		fresh += f
	}
	if total == 0 {
		return 0
	}
	return float64(fresh) / float64(total)
}

// String renders the summary deterministically for logs and tests.
func (s *Summary) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Vertices))
	for n := range s.Vertices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := s.Vertices[n]
		fmt.Fprintf(&b, "%s: l=%.6f S=%.6f cS=%.3f A=%.6f cA=%.3f p=%d rho=%.3f\n",
			n, v.TaskLatency, v.ServiceTimeMean, v.ServiceTimeCV,
			v.InterarrivalMean, v.InterarrivalCV, v.Parallelism, v.Utilization())
	}
	keys := make([]model.EdgeKey, 0, len(s.Edges))
	for k := range s.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		e := s.Edges[k]
		fmt.Fprintf(&b, "%s: l=%.6f obl=%.6f W=%.6f\n", k, e.ChannelLatency, e.OutputBatchLatency, e.QueueWait())
	}
	return b.String()
}

// vertexPartial is the mergeable per-vertex accumulator of a partial
// summary: sums over the tasks a QoS manager observed. The global average
// of Equation 2 is the sum of per-task means divided by the task count.
type vertexPartial struct {
	taskCount           int
	freshCount          int
	sumTaskLatency      float64
	sumServiceMean      float64
	sumServiceCV        float64
	sumInterarrivalMean float64
	sumInterarrivalCV   float64
	samples             int64
}

// edgePartial is the mergeable per-edge accumulator of a partial summary.
type edgePartial struct {
	channelCount      int
	freshCount        int
	sumChannelLatency float64
	sumBatchLatency   float64
	samples           int64
}

// PartialSummary is the measurement aggregate a single QoS manager sends
// to the master node once per adjustment interval. Partial summaries are
// structurally identical to the global summary but cover only the tasks
// and channels assigned to their manager.
type PartialSummary struct {
	vertices map[string]*vertexPartial
	edges    map[model.EdgeKey]*edgePartial
	// parallelism is the vertex parallelism observed by the reporting
	// manager (informational; the master knows the authoritative value).
	parallelism map[string]int
}

// NewPartialSummary returns an empty partial summary.
func NewPartialSummary() *PartialSummary {
	return &PartialSummary{
		vertices:    make(map[string]*vertexPartial),
		edges:       make(map[model.EdgeKey]*edgePartial),
		parallelism: make(map[string]int),
	}
}

// AddTask folds one task's interval statistics into the partial summary.
// All values are per-task means over the manager's measurement history.
func (p *PartialSummary) AddTask(vertex string, taskLatency, serviceMean, serviceCV, interarrivalMean, interarrivalCV float64, samples int64) {
	vp := p.vertices[vertex]
	if vp == nil {
		vp = &vertexPartial{}
		p.vertices[vertex] = vp
	}
	vp.taskCount++
	vp.sumTaskLatency += taskLatency
	vp.sumServiceMean += serviceMean
	vp.sumServiceCV += serviceCV
	vp.sumInterarrivalMean += interarrivalMean
	vp.sumInterarrivalCV += interarrivalCV
	vp.samples += samples
}

// AddChannel folds one channel's interval statistics into the partial
// summary.
func (p *PartialSummary) AddChannel(edge model.EdgeKey, channelLatency, batchLatency float64, samples int64) {
	ep := p.edges[edge]
	if ep == nil {
		ep = &edgePartial{}
		p.edges[edge] = ep
	}
	ep.channelCount++
	ep.sumChannelLatency += channelLatency
	ep.sumBatchLatency += batchLatency
	ep.samples += samples
}

// MarkTaskFresh records that one of the vertex's tasks delivered a
// report within the current adjustment interval. Callers invoke it next
// to AddTask for tasks whose history is not stale.
func (p *PartialSummary) MarkTaskFresh(vertex string) {
	vp := p.vertices[vertex]
	if vp == nil {
		vp = &vertexPartial{}
		p.vertices[vertex] = vp
	}
	vp.freshCount++
}

// MarkChannelFresh records that one of the edge's channels delivered a
// report within the current adjustment interval.
func (p *PartialSummary) MarkChannelFresh(edge model.EdgeKey) {
	ep := p.edges[edge]
	if ep == nil {
		ep = &edgePartial{}
		p.edges[edge] = ep
	}
	ep.freshCount++
}

// FreshTaskCount returns the number of fresh tasks recorded for a vertex.
func (p *PartialSummary) FreshTaskCount(vertex string) int {
	if vp := p.vertices[vertex]; vp != nil {
		return vp.freshCount
	}
	return 0
}

// SetParallelism records the parallelism the manager observed for a
// vertex.
func (p *PartialSummary) SetParallelism(vertex string, parallelism int) {
	p.parallelism[vertex] = parallelism
}

// TaskCount returns the number of tasks folded in for a vertex.
func (p *PartialSummary) TaskCount(vertex string) int {
	if vp := p.vertices[vertex]; vp != nil {
		return vp.taskCount
	}
	return 0
}

// Merge folds another partial summary into this one. The master node uses
// Merge to combine the partials of all QoS managers.
func (p *PartialSummary) Merge(o *PartialSummary) {
	for name, ovp := range o.vertices {
		vp := p.vertices[name]
		if vp == nil {
			cp := *ovp
			p.vertices[name] = &cp
			continue
		}
		vp.taskCount += ovp.taskCount
		vp.freshCount += ovp.freshCount
		vp.sumTaskLatency += ovp.sumTaskLatency
		vp.sumServiceMean += ovp.sumServiceMean
		vp.sumServiceCV += ovp.sumServiceCV
		vp.sumInterarrivalMean += ovp.sumInterarrivalMean
		vp.sumInterarrivalCV += ovp.sumInterarrivalCV
		vp.samples += ovp.samples
	}
	for key, oep := range o.edges {
		ep := p.edges[key]
		if ep == nil {
			cp := *oep
			p.edges[key] = &cp
			continue
		}
		ep.channelCount += oep.channelCount
		ep.freshCount += oep.freshCount
		ep.sumChannelLatency += oep.sumChannelLatency
		ep.sumBatchLatency += oep.sumBatchLatency
		ep.samples += oep.samples
	}
	for name, par := range o.parallelism {
		if par > p.parallelism[name] {
			p.parallelism[name] = par
		}
	}
}

// Finalize converts the (merged) partial summary into a global summary.
// The parallelism map gives the authoritative current degree of
// parallelism per vertex; vertices without an entry fall back to the
// number of tasks observed.
func (p *PartialSummary) Finalize(parallelism map[string]int) *Summary {
	s := NewSummary()
	for name, vp := range p.vertices {
		if vp.taskCount == 0 {
			continue
		}
		n := float64(vp.taskCount)
		par, ok := parallelism[name]
		if !ok {
			par = p.parallelism[name]
		}
		if par <= 0 {
			par = vp.taskCount
		}
		s.Vertices[name] = VertexStats{
			TaskLatency:      vp.sumTaskLatency / n,
			ServiceTimeMean:  vp.sumServiceMean / n,
			ServiceTimeCV:    vp.sumServiceCV / n,
			InterarrivalMean: vp.sumInterarrivalMean / n,
			InterarrivalCV:   vp.sumInterarrivalCV / n,
			Parallelism:      par,
			Tasks:            vp.taskCount,
			Samples:          vp.samples,
			FreshTasks:       vp.freshCount,
		}
	}
	for key, ep := range p.edges {
		if ep.channelCount == 0 {
			continue
		}
		n := float64(ep.channelCount)
		s.Edges[key] = EdgeStats{
			ChannelLatency:     ep.sumChannelLatency / n,
			OutputBatchLatency: ep.sumBatchLatency / n,
			Samples:            ep.samples,
			FreshChannels:      ep.freshCount,
		}
	}
	return s
}
