package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestReservoirBelowCapacity(t *testing.T) {
	r := NewReservoir(10, rand.New(rand.NewSource(1)))
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 5 || r.Count() != 5 {
		t.Fatalf("Len=%d Count=%d, want 5/5", r.Len(), r.Count())
	}
	if got := r.Percentile(1); got != 5 {
		t.Errorf("max percentile: got %v, want 5", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Errorf("min percentile: got %v, want 1", got)
	}
	if got := r.Mean(); got != 3 {
		t.Errorf("mean: got %v, want 3", got)
	}
}

func TestReservoirCapacityBound(t *testing.T) {
	r := NewReservoir(16, rand.New(rand.NewSource(2)))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 16 {
		t.Errorf("Len: got %d, want 16", r.Len())
	}
	if r.Count() != 10000 {
		t.Errorf("Count: got %d, want 10000", r.Count())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Feed 0..9999; the sample mean must be close to the stream mean.
	r := NewReservoir(512, rand.New(rand.NewSource(3)))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	streamMean := 4999.5
	if got := r.Mean(); math.Abs(got-streamMean) > 700 {
		t.Errorf("sample mean %v too far from stream mean %v", got, streamMean)
	}
	// Median of the uniform stream is ~5000.
	if got := r.Percentile(0.5); math.Abs(got-5000) > 1200 {
		t.Errorf("sample median %v too far from 5000", got)
	}
}

// TestReservoirTailPercentileNearestRank is the regression test for the
// partially-filled tail bias: linear interpolation placed q·(n−1)
// below the nearest-rank index for q near 1, so p95/p99 of a small
// sample came out below every sample at or above the true rank (e.g.
// p95 of {1..5} interpolated to 4.8 instead of 5). Nearest-rank must
// return an actual held sample and never undershoot the boundary order
// statistic.
func TestReservoirTailPercentileNearestRank(t *testing.T) {
	r := NewReservoir(4096, rand.New(rand.NewSource(10)))
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if got := r.Percentile(0.95); got != 5 {
		t.Errorf("p95 of {1..5}: got %v, want 5 (nearest rank ⌈0.95·5⌉=5)", got)
	}
	if got := r.Percentile(0.99); got != 5 {
		t.Errorf("p99 of {1..5}: got %v, want 5", got)
	}
	if got := r.Percentile(0.8); got != 4 {
		t.Errorf("p80 of {1..5}: got %v, want 4 (rank ⌈0.8·5⌉=4)", got)
	}
	// A larger partially-filled reservoir: p99 of {1..100} is sample 99,
	// not an interpolated 98.01.
	r.Reset()
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if got := r.Percentile(0.99); got != 99 {
		t.Errorf("p99 of {1..100}: got %v, want 99", got)
	}
	// Every nearest-rank result is a sample actually held.
	held := map[float64]bool{}
	for _, s := range r.Samples() {
		held[s] = true
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		if !held[r.Percentile(q)] {
			t.Errorf("Percentile(%v) = %v is not a held sample", q, r.Percentile(q))
		}
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(4, rand.New(rand.NewSource(4)))
	if r.Percentile(0.5) != 0 || r.Mean() != 0 {
		t.Error("empty reservoir must report zeros")
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4, rand.New(rand.NewSource(5)))
	r.Add(1)
	r.Reset()
	if r.Len() != 0 || r.Count() != 0 {
		t.Error("Reset did not clear reservoir")
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	r := NewReservoir(0, rand.New(rand.NewSource(6)))
	r.Add(7)
	if r.Len() != 1 {
		t.Errorf("capacity clamped to 1: Len got %d", r.Len())
	}
}

func TestPercentileOf(t *testing.T) {
	tests := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{name: "empty", samples: nil, q: 0.5, want: 0},
		{name: "single", samples: []float64{3}, q: 0.95, want: 3},
		{name: "median interpolated", samples: []float64{1, 2, 3, 4}, q: 0.5, want: 2.5},
		{name: "p95 of 1..100", samples: seq(1, 100), q: 0.95, want: 95.05},
		{name: "unsorted input", samples: []float64{4, 1, 3, 2}, q: 0.5, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PercentileOf(tt.samples, tt.q); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("PercentileOf(%v, %v): got %v, want %v", tt.samples, tt.q, got, tt.want)
			}
		})
	}
}

func TestPercentileOfDoesNotMutate(t *testing.T) {
	samples := []float64{3, 1, 2}
	_ = PercentileOf(samples, 0.5)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Error("PercentileOf mutated its input")
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

func TestSamplerProbabilities(t *testing.T) {
	tests := []struct {
		p       float64
		wantLo  int
		wantHi  int
		samples int
	}{
		{p: 0, wantLo: 0, wantHi: 0, samples: 10000},
		{p: 1, wantLo: 10000, wantHi: 10000, samples: 10000},
		{p: 0.1, wantLo: 700, wantHi: 1300, samples: 10000},
	}
	for _, tt := range tests {
		s := NewSampler(tt.p, rand.New(rand.NewSource(7)))
		n := 0
		for i := 0; i < tt.samples; i++ {
			if s.Sample() {
				n++
			}
		}
		if n < tt.wantLo || n > tt.wantHi {
			t.Errorf("p=%v: sampled %d of %d, want in [%d, %d]", tt.p, n, tt.samples, tt.wantLo, tt.wantHi)
		}
	}
}

func TestSamplerClamping(t *testing.T) {
	s := NewSampler(2.0, rand.New(rand.NewSource(8)))
	for i := 0; i < 100; i++ {
		if !s.Sample() {
			t.Fatal("p clamped to 1 must always sample")
		}
	}
	s = NewSampler(-1, rand.New(rand.NewSource(9)))
	for i := 0; i < 100; i++ {
		if s.Sample() {
			t.Fatal("p clamped to 0 must never sample")
		}
	}
}

func TestStridedSampler(t *testing.T) {
	s := NewStridedSampler(3)
	var picks []int
	for i := 1; i <= 9; i++ {
		if s.Sample() {
			picks = append(picks, i)
		}
	}
	if len(picks) != 3 || picks[0] != 3 || picks[1] != 6 || picks[2] != 9 {
		t.Errorf("stride 3 picks: got %v, want [3 6 9]", picks)
	}
	s = NewStridedSampler(0) // clamps to 1
	if !s.Sample() {
		t.Error("stride clamped to 1 must always sample")
	}
}
