package metrics

// IntervalStats accumulates samples within one measurement interval and is
// drained when the interval's report is emitted. It is the building block
// of the QoS reporters: each reporter keeps one IntervalStats per metric
// of Table I and flushes them once per measurement interval.
type IntervalStats struct {
	w Welford
}

// Add incorporates one sample into the current interval.
func (s *IntervalStats) Add(x float64) { s.w.Add(x) }

// Snapshot returns the interval's (count, mean, cv) and resets the
// accumulator for the next interval.
func (s *IntervalStats) Snapshot() (count int64, mean, cv float64) {
	count, mean, cv = s.w.Count(), s.w.Mean(), s.w.CV()
	s.w.Reset()
	return count, mean, cv
}

// Peek returns the interval's statistics without resetting.
func (s *IntervalStats) Peek() (count int64, mean, cv float64) {
	return s.w.Count(), s.w.Mean(), s.w.CV()
}

// RateMeter counts events and converts them into a rate over the interval
// between snapshots. Time is supplied by the caller (seconds), so the
// meter works under both wall-clock and virtual simulation time.
type RateMeter struct {
	count     int64
	lastReset float64
}

// NewRateMeter creates a meter whose first interval starts at now
// (seconds).
func NewRateMeter(now float64) *RateMeter {
	return &RateMeter{lastReset: now}
}

// Mark records n events.
func (m *RateMeter) Mark(n int64) { m.count += n }

// Snapshot returns the event rate (events/second) since the previous
// snapshot and starts a new interval at now.
func (m *RateMeter) Snapshot(now float64) float64 {
	elapsed := now - m.lastReset
	rate := 0.0
	if elapsed > 0 {
		rate = float64(m.count) / elapsed
	}
	m.count = 0
	m.lastReset = now
	return rate
}

// Count returns the events recorded in the current interval.
func (m *RateMeter) Count() int64 { return m.count }

// EWMA is an exponentially weighted moving average with configurable
// smoothing factor alpha in (0, 1]; larger alpha weights recent samples
// more. The zero value is invalid: use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA creates an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates a sample.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any sample.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }
