// Package metrics provides the statistical primitives used by the QoS
// measurement plane: numerically stable running moments (Welford),
// reservoir sampling for percentile estimation, interval accumulators and
// rate meters. All values are plain float64s; the QoS layer decides units
// (seconds for latencies, items/second for rates).
package metrics

import "math"

// Welford accumulates count, mean and variance of a stream of samples
// using Welford's numerically stable online algorithm. The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples seen.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CV returns the coefficient of variation c_X = StdDev(X)/Mean(X)
// (Table I of the paper), or 0 when the mean is 0.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Reset clears all accumulated state.
func (w *Welford) Reset() { *w = Welford{} }

// Merge combines another accumulator into this one using the parallel
// variance formula (Chan et al.). It is used to merge partial QoS
// summaries into the global summary.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}
