package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// relErr is |est−exact|/exact, with exact 0 treated as requiring est 0.
func relErr(est, exact float64) float64 {
	if exact == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-exact) / exact
}

var testQuantiles = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// TestSketchRelativeErrorBound checks the declared guarantee on three
// distribution shapes: every quantile estimate must be within α of the
// exact nearest-rank value.
func TestSketchRelativeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() float64{
		"uniform":   func() float64 { return 0.001 + 0.999*rng.Float64() },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()*1.5 - 5) },
		"bimodal": func() float64 {
			if rng.Float64() < 0.9 {
				return 0.002 + 0.001*rng.NormFloat64()
			}
			return 0.5 + 0.1*rng.NormFloat64()
		},
	}
	for name, draw := range distributions {
		s := NewDefault()
		samples := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			v := math.Abs(draw())
			samples = append(samples, v)
			s.Add(v)
		}
		if got, want := s.Count(), uint64(len(samples)); got != want {
			t.Fatalf("%s: count %d, want %d", name, got, want)
		}
		for _, q := range testQuantiles {
			exact := NearestRankOf(samples, q)
			est := s.Quantile(q)
			if re := relErr(est, exact); re > s.Alpha()+1e-12 {
				t.Errorf("%s q=%g: sketch %.6g vs exact %.6g, rel err %.4f > α=%.2f",
					name, q, est, exact, re, s.Alpha())
			}
		}
	}
}

// TestSketchMergeAssociativeCommutative is a property test: random
// partitions of a stream over several workers, merged in random
// groupings and orders, must produce identical quantiles and identical
// serialized bytes.
func TestSketchMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nWorkers := 2 + rng.Intn(6)
		workers := make([]*Sketch, nWorkers)
		for i := range workers {
			workers[i] = NewDefault()
		}
		ref := NewDefault()
		for i := 0; i < 5000; i++ {
			v := math.Exp(rng.NormFloat64() - 4)
			workers[rng.Intn(nWorkers)].Add(v)
			ref.Add(v)
		}

		// Left fold in shuffled order.
		order := rng.Perm(nWorkers)
		a := NewDefault()
		for _, i := range order {
			a.Merge(workers[i])
		}
		// Pairwise tree reduction in a different shuffled order.
		pool := make([]*Sketch, 0, nWorkers)
		for _, i := range rng.Perm(nWorkers) {
			pool = append(pool, workers[i].Clone())
		}
		for len(pool) > 1 {
			pool[0].Merge(pool[1])
			pool = append(pool[:1], pool[2:]...)
		}
		b := pool[0]

		ba, _ := a.MarshalBinary()
		bb, _ := b.MarshalBinary()
		br, _ := ref.MarshalBinary()
		if !bytes.Equal(ba, bb) {
			t.Fatalf("trial %d: fold vs tree merge bytes differ", trial)
		}
		if !bytes.Equal(ba, br) {
			t.Fatalf("trial %d: merged bytes differ from single-sketch ingest", trial)
		}
		for _, q := range testQuantiles {
			if a.Quantile(q) != ref.Quantile(q) {
				t.Fatalf("trial %d q=%g: merged %.9g != direct %.9g",
					trial, q, a.Quantile(q), ref.Quantile(q))
			}
		}
		if a.Count() != ref.Count() {
			t.Fatalf("trial %d: merged count %d != %d", trial, a.Count(), ref.Count())
		}
	}
}

// TestSketchMultiWorkerPoolingByteIdentical mirrors the multi-seed
// experiment pooling contract: the same per-worker sketches merged in
// every permutation of completion order serialize to identical bytes.
func TestSketchMultiWorkerPoolingByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	workers := make([]*Sketch, 4)
	for i := range workers {
		workers[i] = NewDefault()
		for j := 0; j < 2000; j++ {
			workers[i].Add(math.Exp(rng.NormFloat64()*2 - 6))
		}
	}
	var want []byte
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	for _, p := range perms {
		m := NewDefault()
		for _, i := range p {
			m.Merge(workers[i])
		}
		b, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if !bytes.Equal(b, want) {
			t.Fatalf("merge order %v produced different bytes", p)
		}
	}
}

// TestSketchZeroAndEdgeCases pins behavior at the boundaries: zero and
// sub-floor values, empty and nil sketches, q outside [0, 1].
func TestSketchZeroAndEdgeCases(t *testing.T) {
	var nilS *Sketch
	nilS.Add(1)
	if nilS.Quantile(0.5) != 0 || nilS.Count() != 0 || nilS.Mean() != 0 {
		t.Error("nil sketch must be a no-op")
	}
	s := NewDefault()
	if s.Quantile(0.99) != 0 {
		t.Error("empty sketch quantile must be 0")
	}
	s.Add(0)
	s.Add(-1)
	s.Add(math.NaN())
	if s.Count() != 2 {
		t.Fatalf("count %d after 0, -1, NaN; want 2 (NaN dropped)", s.Count())
	}
	if s.Quantile(0.5) != 0 {
		t.Error("all-zero stream median must be 0")
	}
	s.Add(10)
	if got := s.Quantile(1); relErr(got, 10) > s.Alpha() {
		t.Errorf("max estimate %.4f not within α of 10", got)
	}
	if got := s.Quantile(-0.5); got != 0 {
		t.Errorf("q<0 must clamp to minimum, got %g", got)
	}
	if got := s.Quantile(2); relErr(got, 10) > s.Alpha() {
		t.Errorf("q>1 must clamp to maximum, got %g", got)
	}
}

// TestSketchCountAbove checks SLO-style bad-event counting against a
// stream with a known split.
func TestSketchCountAbove(t *testing.T) {
	s := NewDefault()
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i) / 1000) // 0.001 .. 1.000
	}
	got := s.CountAbove(0.5)
	if got < 480 || got > 520 {
		t.Errorf("CountAbove(0.5) = %d, want ≈500 (±α slack)", got)
	}
	if s.CountAbove(2) != 0 {
		t.Error("CountAbove above max must be 0")
	}
	if got := s.CountAbove(0); got != 1000 {
		t.Errorf("CountAbove(0) = %d, want 1000", got)
	}
}

// TestSketchMeanSumDeterministic checks the mean estimate against the
// true mean (within α) and that Reset keeps capacity but clears state.
func TestSketchMeanSumDeterministic(t *testing.T) {
	s := NewDefault()
	sum := 0.0
	for i := 1; i <= 10000; i++ {
		v := float64(i) * 1e-4
		s.Add(v)
		sum += v
	}
	mean := sum / 10000
	if re := relErr(s.Mean(), mean); re > s.Alpha() {
		t.Errorf("mean estimate %.6f vs true %.6f, rel err %.4f", s.Mean(), mean, re)
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Sum() != 0 {
		t.Error("Reset must clear all state")
	}
	s.Add(5)
	if re := relErr(s.Quantile(1), 5); re > s.Alpha() {
		t.Error("sketch unusable after Reset")
	}
}

// TestSketchAddSteadyStateAllocFree verifies the record path allocates
// nothing once the bucket store covers the observed range.
func TestSketchAddSteadyStateAllocFree(t *testing.T) {
	s := NewDefault()
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64()*2 - 5)
	}
	for _, v := range vals {
		s.Add(v) // warm the store
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			s.Add(v)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Add allocated %.2f per run, want 0", allocs)
	}
}

// TestSketchMergeMixedAlpha documents the cross-α fallback: counts are
// preserved and quantiles stay within the compounded bound.
func TestSketchMergeMixedAlpha(t *testing.T) {
	a := New(0.01)
	b := New(0.02)
	for i := 1; i <= 1000; i++ {
		a.Add(float64(i))
		b.Add(float64(i))
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count %d, want 2000", a.Count())
	}
	exact := 500.0 // median of the combined stream
	if re := relErr(a.Quantile(0.5), exact); re > 0.04 {
		t.Errorf("cross-α merged median %.2f, rel err %.4f > compounded bound", a.Quantile(0.5), re)
	}
}

// TestNearestRankOf pins the exact reference definition.
func TestNearestRankOf(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {0.95, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := NearestRankOf(samples, c.q); got != c.want {
			t.Errorf("NearestRankOf(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if NearestRankOf(nil, 0.5) != 0 {
		t.Error("empty input must return 0")
	}
	// Input must not be mutated (sorted copy).
	if samples[0] != 5 {
		t.Error("NearestRankOf mutated its input")
	}
}

// TestSketchQuantileBoundaries pins the nearest-rank edges the tail
// coefficient divides by: q=0, q=1, a single sample, an empty sketch,
// and a NaN quantile — each checked against the exact NearestRankOf
// reference. Converting a NaN rank to an integer is platform-dependent
// in Go, so before the explicit fast path a NaN q returned the maximum
// on amd64 and the minimum on arm64.
func TestSketchQuantileBoundaries(t *testing.T) {
	samples := []float64{0.4, 0.1, 0.3, 0.2, 0.5}
	s := NewDefault()
	for _, v := range samples {
		s.Add(v)
	}
	for _, q := range []float64{0, -1, 1, 2, math.NaN()} {
		exact := NearestRankOf(samples, q)
		if got := s.Quantile(q); relErr(got, exact) > s.Alpha() {
			t.Errorf("Quantile(%v) = %g, want within α of exact nearest-rank %g", q, got, exact)
		}
	}
	if got := NearestRankOf(samples, math.NaN()); got != 0.1 {
		t.Errorf("NearestRankOf(NaN) = %g, want minimum 0.1", got)
	}

	one := NewDefault()
	one.Add(0.25)
	for _, q := range []float64{0, 0.5, 0.99, 1, math.NaN()} {
		if got := one.Quantile(q); relErr(got, 0.25) > one.Alpha() {
			t.Errorf("single-sample Quantile(%v) = %g, want ≈0.25 at every q", q, got)
		}
		if got := NearestRankOf([]float64{0.25}, q); got != 0.25 {
			t.Errorf("single-sample NearestRankOf(%v) = %g, want 0.25", q, got)
		}
	}

	empty := NewDefault()
	for _, q := range []float64{0, 0.5, 1, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %g, want 0", q, got)
		}
	}
}
