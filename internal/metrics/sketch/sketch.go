// Package sketch implements a DDSketch-style log-bucketed quantile
// sketch with a fixed relative-error guarantee: any quantile estimate
// is within a configurable relative accuracy α (default 1%) of the
// true rank-α quantile of the observed stream.
//
// Observations are mapped to geometric buckets i = ⌈log_γ v⌉ with
// γ = (1+α)/(1−α); each bucket stores only an integer count, so the
// sketch state is pure integers and Merge is per-bucket addition —
// exactly associative and commutative. Like the Welford merge used for
// multi-seed pooling, merging per-worker sketches yields byte-identical
// results regardless of worker completion order.
//
// The record path is allocation-free in steady state: the dense bucket
// store grows amortized (and only while the observed value range is
// still expanding), so sketches on the engine/sim hot paths stay within
// the repository's allocs-per-record guards.
//
// A Sketch is not safe for concurrent use; callers synchronize, as with
// metrics.Welford.
package sketch

import (
	"encoding/binary"
	"math"
	"sort"
)

// DefaultAlpha is the default relative accuracy: quantile estimates are
// within ±1% of the true value.
const DefaultAlpha = 0.01

// minIndexedValue is the smallest observation mapped to a log bucket;
// anything below (including zero and negatives, which cannot occur for
// latencies but are clamped defensively) lands in the zero bucket and
// is reported as 0. At 1 ns it is far below any latency this system
// measures.
const minIndexedValue = 1e-9

// Sketch is a mergeable quantile sketch. The zero value is not usable;
// use New or NewDefault.
type Sketch struct {
	alpha       float64
	gamma       float64
	invLogGamma float64 // 1 / ln γ, cached for the record path

	zero   uint64   // observations in [0, minIndexedValue)
	count  uint64   // total observations, including the zero bucket
	offset int      // bucket index of store[0]
	store  []uint64 // dense bucket counts
}

// New returns a sketch with relative accuracy alpha (0 < alpha < 1);
// out-of-range values fall back to DefaultAlpha.
func New(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		alpha = DefaultAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
	}
}

// NewDefault returns a sketch with DefaultAlpha relative accuracy.
func NewDefault() *Sketch { return New(DefaultAlpha) }

// Alpha returns the sketch's relative accuracy (0 on nil).
func (s *Sketch) Alpha() float64 {
	if s == nil {
		return 0
	}
	return s.alpha
}

// Count returns the number of observations recorded (0 on nil).
func (s *Sketch) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Add records one observation. NaN is dropped; values below the
// indexable floor (including non-positive values) count in the zero
// bucket.
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN records n identical observations.
func (s *Sketch) AddN(v float64, n uint64) {
	if s == nil || n == 0 || math.IsNaN(v) {
		return
	}
	s.count += n
	if v < minIndexedValue {
		s.zero += n
		return
	}
	s.bump(s.index(v), n)
}

// index maps a value ≥ minIndexedValue to its bucket: the unique i with
// γ^(i−1) < v ≤ γ^i.
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLogGamma))
}

// value returns the representative value of bucket i: the point
// 2γ^i/(γ+1), whose relative distance to every value in the bucket is
// at most α.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// bump adds n to bucket i, growing the dense store as needed. Growth
// doubles capacity so steady-state recording is allocation-free once
// the observed value range stabilizes.
func (s *Sketch) bump(i int, n uint64) {
	if len(s.store) == 0 {
		if cap(s.store) == 0 {
			s.store = make([]uint64, 1, 32)
		} else {
			s.store = s.store[:1]
		}
		s.offset = i
		s.store[0] = n
		return
	}
	if i < s.offset {
		grow := s.offset - i
		if grow <= cap(s.store)-len(s.store) {
			s.store = s.store[:len(s.store)+grow]
			copy(s.store[grow:], s.store[:len(s.store)-grow])
			for j := 0; j < grow; j++ {
				s.store[j] = 0
			}
		} else {
			ns := make([]uint64, len(s.store)+grow, nextCap(len(s.store)+grow))
			copy(ns[grow:], s.store)
			s.store = ns
		}
		s.offset = i
	} else if i >= s.offset+len(s.store) {
		need := i - s.offset + 1
		if need <= cap(s.store) {
			tail := s.store[len(s.store):need]
			for j := range tail {
				tail[j] = 0
			}
			s.store = s.store[:need]
		} else {
			ns := make([]uint64, need, nextCap(need))
			copy(ns, s.store)
			s.store = ns
		}
	}
	s.store[i-s.offset] += n
}

// nextCap doubles from the minimum required capacity, floored at 32.
func nextCap(need int) int {
	c := 32
	for c < need {
		c *= 2
	}
	return c
}

// Quantile estimates the q-th quantile (q in [0, 1]) with nearest-rank
// semantics: the returned value is within relative accuracy α of the
// ⌈q·n⌉-th smallest observation. Returns 0 when empty or nil.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	rank := nearestRank(q, s.count)
	if rank <= s.zero {
		return 0
	}
	cum := s.zero
	for j, c := range s.store {
		cum += c
		if cum >= rank {
			return s.value(s.offset + j)
		}
	}
	// Unreachable when counts are consistent; fall back to the top
	// bucket.
	return s.value(s.offset + len(s.store) - 1)
}

// CountAbove returns the number of observations recorded in buckets
// whose representative value exceeds x — within the sketch's accuracy,
// the count of observations greater than x. Used for SLO bad-event
// accounting.
func (s *Sketch) CountAbove(x float64) uint64 {
	if s == nil || s.count == 0 {
		return 0
	}
	var n uint64
	for j := len(s.store) - 1; j >= 0; j-- {
		if s.value(s.offset+j) <= x {
			break
		}
		n += s.store[j]
	}
	return n
}

// Sum returns the deterministic estimated sum of all observations:
// Σ countᵢ·valueᵢ over buckets in fixed index order, so the result does
// not depend on ingest or merge order.
func (s *Sketch) Sum() float64 {
	if s == nil {
		return 0
	}
	sum := 0.0
	for j, c := range s.store {
		if c > 0 {
			sum += float64(c) * s.value(s.offset+j)
		}
	}
	return sum
}

// Mean returns the estimated mean observation (0 when empty).
func (s *Sketch) Mean() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.Sum() / float64(s.count)
}

// Merge folds o into s: per-bucket integer addition, so the operation
// is associative, commutative and — for equal-α sketches — yields
// byte-identical state regardless of merge order. Sketches with a
// different α are folded by re-adding their bucket representative
// values, which preserves determinism but compounds the error bounds.
// A nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if s == nil || o == nil || o.count == 0 {
		return
	}
	if o.alpha != s.alpha {
		s.count += o.zero
		s.zero += o.zero
		for j, c := range o.store {
			if c > 0 {
				s.count += c
				s.bump(s.index(o.value(o.offset+j)), c)
			}
		}
		return
	}
	s.count += o.count
	s.zero += o.zero
	for j, c := range o.store {
		if c > 0 {
			s.bump(o.offset+j, c)
		}
	}
}

// Clone returns an independent copy of the sketch (nil on nil).
func (s *Sketch) Clone() *Sketch {
	if s == nil {
		return nil
	}
	c := *s
	c.store = append([]uint64(nil), s.store...)
	return &c
}

// Reset discards all observations, keeping the bucket store's capacity
// so subsequent recording stays allocation-free.
func (s *Sketch) Reset() {
	if s == nil {
		return
	}
	s.zero = 0
	s.count = 0
	s.offset = 0
	s.store = s.store[:0]
}

// trimmed returns the non-empty bucket range [lo, hi) of the store and
// the index of the first retained bucket, normalizing away leading and
// trailing zero buckets so equal contents serialize identically no
// matter how the store grew.
func (s *Sketch) trimmed() (buckets []uint64, firstIndex int) {
	lo, hi := 0, len(s.store)
	for lo < hi && s.store[lo] == 0 {
		lo++
	}
	for hi > lo && s.store[hi-1] == 0 {
		hi--
	}
	return s.store[lo:hi], s.offset + lo
}

// MarshalBinary serializes the sketch deterministically: two sketches
// holding the same observations (in any order, merged in any grouping)
// produce identical bytes. Layout: α bits, zero count, total count,
// first bucket index, bucket count, then the bucket counts.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	if s == nil {
		return nil, nil
	}
	buckets, first := s.trimmed()
	buf := make([]byte, 0, 8*5+8*len(buckets))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.alpha))
	buf = binary.BigEndian.AppendUint64(buf, s.zero)
	buf = binary.BigEndian.AppendUint64(buf, s.count)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(first)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(buckets)))
	for _, c := range buckets {
		buf = binary.BigEndian.AppendUint64(buf, c)
	}
	return buf, nil
}

// Quantiles evaluates the sketch at each q in qs, appending to dst.
func (s *Sketch) Quantiles(dst []float64, qs []float64) []float64 {
	for _, q := range qs {
		dst = append(dst, s.Quantile(q))
	}
	return dst
}

// NearestRankOf computes the exact q-th quantile of samples with
// nearest-rank semantics — the ⌈q·n⌉-th smallest element — without
// mutating the input. This is the ground-truth definition the sketch's
// relative-error bound is stated against.
func NearestRankOf(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return sorted[nearestRank(q, uint64(len(sorted)))-1]
}

// nearestRank maps a quantile to its 1-based nearest rank ⌈q·n⌉ in
// [1, n]. The edges are handled explicitly rather than through float
// conversion: q ≤ 0 and NaN pin to the minimum (rank 1), q ≥ 1 to the
// maximum (rank n). Converting ⌈NaN⌉ or an out-of-range product to an
// integer is platform-dependent in Go, which previously made Quantile
// return the max on amd64 and the min on arm64 for a NaN q.
func nearestRank(q float64, n uint64) uint64 {
	switch {
	case math.IsNaN(q) || q <= 0:
		return 1
	case q >= 1:
		return n
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}
