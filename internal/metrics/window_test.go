package metrics

import (
	"math"
	"testing"
)

func TestIntervalStatsSnapshotResets(t *testing.T) {
	var s IntervalStats
	s.Add(2)
	s.Add(4)
	count, mean, cv := s.Snapshot()
	if count != 2 || mean != 3 {
		t.Errorf("snapshot: count=%d mean=%v, want 2/3", count, mean)
	}
	wantCV := math.Sqrt(2) / 3 // std of {2,4} is sqrt(2)
	if !almostEqual(cv, wantCV, 1e-12) {
		t.Errorf("snapshot cv: got %v, want %v", cv, wantCV)
	}
	count, _, _ = s.Peek()
	if count != 0 {
		t.Error("Snapshot did not reset the interval")
	}
}

func TestIntervalStatsPeekDoesNotReset(t *testing.T) {
	var s IntervalStats
	s.Add(1)
	if c, _, _ := s.Peek(); c != 1 {
		t.Fatalf("Peek count: got %d, want 1", c)
	}
	if c, _, _ := s.Peek(); c != 1 {
		t.Error("Peek reset the interval")
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(100.0)
	m.Mark(50)
	if m.Count() != 50 {
		t.Errorf("Count: got %d, want 50", m.Count())
	}
	rate := m.Snapshot(110.0) // 50 events over 10 s
	if rate != 5 {
		t.Errorf("rate: got %v, want 5", rate)
	}
	if m.Count() != 0 {
		t.Error("Snapshot did not reset the counter")
	}
	// Zero elapsed time yields zero rate, not a division by zero.
	m.Mark(10)
	if rate := m.Snapshot(110.0); rate != 0 {
		t.Errorf("zero-interval rate: got %v, want 0", rate)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA must not be initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first sample: got %v, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Errorf("second sample: got %v, want 15", e.Value())
	}
	// Invalid alpha falls back to 0.5.
	e2 := NewEWMA(-3)
	e2.Add(0)
	e2.Add(10)
	if e2.Value() != 5 {
		t.Errorf("fallback alpha: got %v, want 5", e2.Value())
	}
}
