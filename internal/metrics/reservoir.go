package metrics

import (
	"math"
	"math/rand"
	"sort"
)

// Reservoir keeps a uniform random sample of bounded size over a stream of
// observations (Vitter's algorithm R). It is used to estimate latency
// percentiles without recording every data item, mirroring the paper's
// random-sampling approach to latency measurement.
type Reservoir struct {
	capacity int
	seen     int64
	samples  []float64
	rng      *rand.Rand
}

// NewReservoir creates a reservoir holding at most capacity samples. The
// rng must not be shared with other goroutines; pass a seeded source for
// reproducible runs.
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{
		capacity: capacity,
		samples:  make([]float64, 0, capacity),
		rng:      rng,
	}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.samples) < r.capacity {
		r.samples = append(r.samples, x)
		return
	}
	if idx := r.rng.Int63n(r.seen); idx < int64(r.capacity) {
		r.samples[idx] = x
	}
}

// Count returns the number of observations offered so far.
func (r *Reservoir) Count() int64 { return r.seen }

// Len returns the number of samples currently held.
func (r *Reservoir) Len() int { return len(r.samples) }

// Percentile estimates the q-th percentile (q in [0, 1]) from the
// sample with nearest-rank semantics: the ⌈q·n⌉-th smallest held
// sample. It returns 0 when the reservoir is empty.
//
// Earlier versions interpolated between order statistics, which biases
// tail quantiles low on partially-filled reservoirs: with n samples the
// interpolated position q·(n−1) sits below the nearest-rank index for
// every q near 1, so p95/p99 reported a value strictly smaller than any
// sample at or above the true rank. Nearest-rank never underestimates
// the boundary order statistic.
func (r *Reservoir) Percentile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(r.samples))
	copy(sorted, r.samples)
	sort.Float64s(sorted)
	return nearestRankOfSorted(sorted, q)
}

// Mean returns the mean of the held samples, or 0 when empty.
func (r *Reservoir) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range r.samples {
		sum += x
	}
	return sum / float64(len(r.samples))
}

// Reset discards all samples and the observation count.
func (r *Reservoir) Reset() {
	r.samples = r.samples[:0]
	r.seen = 0
}

// Samples returns a copy of the currently held samples.
func (r *Reservoir) Samples() []float64 {
	out := make([]float64, len(r.samples))
	copy(out, r.samples)
	return out
}

// percentileOfSorted interpolates the q-th percentile of an ascending
// slice.
func percentileOfSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// nearestRankOfSorted returns the ⌈q·n⌉-th element of an ascending
// slice (clamped to [1, n]).
func nearestRankOfSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := math.Ceil(q * float64(len(sorted)))
	if pos < 1 {
		pos = 1
	}
	idx := int(pos) - 1
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PercentileOf computes the q-th percentile of an arbitrary sample slice
// without mutating it.
func PercentileOf(samples []float64, q float64) float64 {
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return percentileOfSorted(sorted, q)
}
