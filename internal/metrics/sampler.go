package metrics

import "math/rand"

// Sampler decides which data items participate in latency measurement.
// The paper reduces measurement overhead by taking a random sample of the
// data item latencies within each measurement period; Sampler implements
// that Bernoulli sampling with a configurable probability.
type Sampler struct {
	prob uint32 // sampling threshold out of 2^32
	rng  *rand.Rand
}

// NewSampler creates a sampler that selects each item independently with
// probability p (clamped to [0, 1]).
func NewSampler(p float64, rng *rand.Rand) *Sampler {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &Sampler{prob: uint32(p * float64(1<<32-1)), rng: rng}
}

// Sample reports whether the next item should be sampled.
func (s *Sampler) Sample() bool {
	if s.prob == 0 {
		return false
	}
	return s.rng.Uint32() <= s.prob
}

// StridedSampler samples every n-th item deterministically. It is cheaper
// than Bernoulli sampling on hot paths and used by the engine's task
// loops.
type StridedSampler struct {
	stride  int
	counter int
}

// NewStridedSampler creates a sampler selecting every stride-th item
// (stride >= 1; stride 1 samples everything).
func NewStridedSampler(stride int) *StridedSampler {
	if stride < 1 {
		stride = 1
	}
	return &StridedSampler{stride: stride}
}

// Sample reports whether the next item should be sampled.
func (s *StridedSampler) Sample() bool {
	s.counter++
	if s.counter >= s.stride {
		s.counter = 0
		return true
	}
	return false
}
