package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveStats computes mean and unbiased variance in two passes.
func naiveStats(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, ss / float64(len(xs)-1)
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean, variance := naiveStats(xs)
		return w.Count() == int64(len(xs)) &&
			almostEqual(w.Mean(), mean, 1e-9) &&
			almostEqual(w.Variance(), variance, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CV() != 0 || w.Count() != 0 {
		t.Error("zero-value Welford must report zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordCV(t *testing.T) {
	var w Welford
	// Deterministic samples with mean 10 and known variance 4 (population
	// variance of {8, 12} with Bessel correction: 8).
	w.Add(8)
	w.Add(12)
	wantStd := math.Sqrt(8.0)
	if !almostEqual(w.CV(), wantStd/10, 1e-12) {
		t.Errorf("CV: got %v, want %v", w.CV(), wantStd/10)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	prop := func(seedA, seedB int64, nA, nB uint8) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		var wa, wb, all Welford
		for i := 0; i < int(nA); i++ {
			x := rngA.NormFloat64()*3 + 7
			wa.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nB); i++ {
			x := rngB.NormFloat64()*5 - 2
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(wb)
		return wa.Count() == all.Count() &&
			almostEqual(wa.Mean(), all.Mean(), 1e-9) &&
			almostEqual(wa.Variance(), all.Variance(), 1e-7)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != a.Mean() || b.Count() != a.Count() {
		t.Error("merging into empty accumulator did not copy")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(42)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}
