module nephelix

go 1.22
