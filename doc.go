// Package nephelix is a from-scratch Go reproduction of
//
//	B. Lohrmann, P. Janacik, O. Kao:
//	"Elastic Stream Processing with Latency Guarantees", ICDCS 2015,
//
// comprising the paper's primary contribution — a queueing-theoretic
// latency model with the Rebalance / ResolveBottlenecks / ScaleReactively
// reactive scaling strategy (internal/core) — and every substrate it
// depends on: the formal job/runtime-graph model with latency constraints
// (internal/model), the QoS measurement plane with partial/global
// summaries and the adaptive output-batching controller (internal/qos),
// a live goroutine-based streaming engine (internal/engine), a
// virtual-time cluster simulator that regenerates the paper's 130-node
// experiments on a laptop (internal/sim), cluster scheduling and
// resource accounting (internal/cluster), the evaluation workloads
// (internal/workload, internal/apps) and the per-figure experiment
// harness (internal/experiments).
//
// The benchmarks in bench_test.go regenerate every measured figure and
// table of the paper's evaluation; see DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package nephelix
