// Command tracegen synthesizes a JSONL tweet dataset whose timestamps
// follow the paper's diurnal trace (the stand-in for the 69 GB two-week
// Twitter crawl), for replay with twittersentiment -trace.
//
// Usage:
//
//	tracegen [-out FILE] [-scale N] [-duration S] [-topics N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"nephelix/internal/apps"
	"nephelix/internal/workload"
)

func main() {
	out := flag.String("out", "tweets.jsonl", "output trace file")
	scale := flag.Int("scale", 16, "divide the paper trace's rates by this factor")
	duration := flag.Float64("duration", 0, "truncate the 6000 s trace (0 = full)")
	topics := flag.Int("topics", 1000, "topic universe size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*out, *scale, *duration, *topics, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out string, scale int, duration float64, topics int, seed int64) error {
	trace := apps.DefaultTweetTrace()
	if scale > 1 {
		f := float64(scale)
		trace.BaseRate /= f
		trace.DailyAmplitude /= f
		for i := range trace.Bursts {
			trace.Bursts[i].ExtraRate /= f
		}
	}
	if duration > 0 && duration < trace.Length {
		trace.Length = duration
	}
	n, err := workload.GenerateTweetTraceFile(out, trace, topics, seed)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d tweets to %s (%.0f s of trace at 1/%d scale)\n",
		n, out, trace.Length, scale)
	return nil
}
