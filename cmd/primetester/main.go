// Command primetester runs the PrimeTester job (Sections III-A and V-A)
// on the virtual-time cluster simulator in any of the paper's four
// configurations, optionally with reactive elastic scaling, and writes
// the time series as CSV.
//
// Usage:
//
//	primetester [-config storm|if|16kib|20ms] [-elastic] [-scale N]
//	            [-steps N] [-stepdur S] [-bound MS] [-csv FILE] [-seed N]
//	            [-guarantee at-most-once|at-least-once|exactly-once]
//	            [-ckpt.interval S]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/ckpt"
	"nephelix/internal/engine"
	"nephelix/internal/experiments"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

func main() {
	config := flag.String("config", "20ms", "batching configuration: storm | if | 16kib | 20ms")
	elastic := flag.Bool("elastic", false, "enable the reactive elastic scaler (testers 1..520)")
	scale := flag.Int("scale", 8, "divide the paper topology and rates by this factor")
	steps := flag.Int("steps", 4, "number of increment steps (peak = (steps+1)·10⁴ items/s)")
	stepdur := flag.Float64("stepdur", 20, "step duration in seconds (paper: 60)")
	bound := flag.Int("bound", 20, "latency constraint in milliseconds (for the 20ms config)")
	quantile := flag.Float64("constraint.quantile", 0, "percentile constraint: bound this latency quantile instead of the mean, e.g. 0.99 for p99 (0 = paper's mean semantics)")
	csvPath := flag.String("csv", "", "write the time series to this CSV file")
	seed := flag.Int64("seed", 1, "random seed")
	guarantee := flag.String("guarantee", "at-most-once", "processing guarantee: at-most-once | at-least-once | exactly-once")
	ckptInterval := flag.Float64("ckpt.interval", 1, "checkpoint interval in virtual seconds (guaranteed runs)")
	obsAddr := flag.String("obs.addr", "", "serve introspection endpoints (/healthz, /metrics, /timeseries, /slo, /dataplane, /dash, /debug/pprof, /scaler/decisions) on this address")
	decisionsPath := flag.String("decisions", "", "write the scaler's decision audit trail to this JSONL file")
	timeseriesPath := flag.String("timeseries", "", "write the telemetry time series and residual stats to this JSON file")
	engine.RegisterFlags(flag.CommandLine) // -engine.shards, -engine.wheel (live-engine runs)
	flag.Parse()

	g, err := ckpt.ParseGuarantee(*guarantee)
	if err != nil {
		fmt.Fprintln(os.Stderr, "primetester:", err)
		os.Exit(1)
	}
	if err := run(*config, *elastic, *scale, *steps, *stepdur, *bound, *quantile, *csvPath, *seed, *obsAddr, *decisionsPath, *timeseriesPath, g, *ckptInterval); err != nil {
		fmt.Fprintln(os.Stderr, "primetester:", err)
		os.Exit(1)
	}
}

func run(config string, elastic bool, scale, steps int, stepdur float64, boundMS int, quantile float64, csvPath string, seed int64, obsAddr, decisionsPath, timeseriesPath string, guarantee ckpt.Guarantee, ckptInterval float64) error {
	var mode sim.BatchMode
	var bound time.Duration
	switch config {
	case "storm", "if":
		mode = sim.BatchInstant
	case "16kib":
		mode = sim.BatchFixedBuffer
	case "20ms":
		mode = sim.BatchAdaptive
		bound = time.Duration(boundMS) * time.Millisecond
	default:
		return fmt.Errorf("unknown config %q (want storm|if|16kib|20ms)", config)
	}

	base := apps.PrimeTesterOptions{
		Sources:      32,
		Sinks:        32,
		PrimeTesters: 128,
		Schedule: &workload.StepSchedule{
			WarmUpRate:     10000,
			StepDelta:      10000,
			IncrementSteps: steps,
			StepDuration:   stepdur,
		},
		Mode:               mode,
		ConstraintBound:    bound,
		ConstraintQuantile: quantile,
		Elastic:            elastic,
		WorkerNodes:        130,
		SlotsPerNode:       5,
		Seed:               seed,
		Guarantee:          guarantee,
		CheckpointInterval: ckptInterval,
	}
	if elastic {
		base.MinPT, base.MaxPT = 1, 520
	}
	opts := apps.ScalePrimeTesterOptions(base, scale)

	cfg, probes, err := apps.BuildPrimeTester(opts)
	if err != nil {
		return err
	}
	recorder := obs.NewRecorder(0)
	telemetry := obs.NewTelemetry(0)
	cfg.Recorder = recorder
	cfg.Telemetry = telemetry
	if obsAddr != "" {
		srv, err := obs.Serve(obsAddr, obs.ServerConfig{Recorder: recorder, Telemetry: telemetry})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("introspection on http://%s\n", obsAddr)
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		return err
	}

	fmt.Printf("PrimeTester %s at 1/%d scale, elastic=%v, %d+2 steps of %.0fs\n",
		config, scale, elastic, 2*steps, stepdur)
	res, err := s.Run()
	if err != nil {
		return err
	}

	summary := res.Probes[apps.PrimeProbe]
	fmt.Printf("\nmean latency %.1f ms, p95 %.1f ms over %d samples\n",
		summary.Mean*1000, summary.P95*1000, summary.Count)
	if bound > 0 {
		fmt.Printf("constraint %v met in %.0f%% of %d adjustment intervals\n",
			bound, summary.Fulfillment*100, summary.Intervals)
		if quantile > 0 {
			fmt.Printf("percentile fulfillment (%s): %.0f%%; run-wide p99 %.1f ms\n",
				model.QuantileLabel(quantile), summary.TailFulfillment*100, summary.P99*1000)
		}
	}
	fmt.Printf("emitted %d items; task-hours (paper scale) %.1f\n",
		res.Emitted[apps.PTSource]*int64(scale), res.TaskHours*float64(scale))
	if elastic {
		fmt.Printf("scale-ups %d, scale-downs %d, peak testers %d\n",
			res.ScaleUps, res.ScaleDowns, res.PeakParallelism[apps.PTWorker]*scale)
	}
	if guarantee.Enabled() {
		fmt.Printf("guarantee %s: %d checkpoints committed (%d aborted), %d offsets committed, %d replayed\n",
			guarantee, res.CheckpointsCommitted, res.CheckpointsAborted, res.CommittedOffsets, res.ReplayedItems)
		fmt.Printf("sinks: %d distinct, %d duplicates detected, %d holes\n",
			res.SinkDistinct, res.SinkDuplicates, res.SinkHoles)
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteRowsCSV(f, res.Rows, float64(scale)); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", csvPath, len(res.Rows))
	}
	if decisionsPath != "" {
		f, err := os.Create(decisionsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := recorder.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d decision events)\n", decisionsPath, len(recorder.Decisions()))
	}
	if timeseriesPath != "" {
		f, err := os.Create(timeseriesPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d series)\n", timeseriesPath, telemetry.Store().Len())
	}
	if drift := telemetry.Residuals().DriftFlags(); len(drift) > 0 {
		fmt.Printf("model drift detected in %d constraint/vertex cells:\n", len(drift))
		for _, d := range drift {
			fmt.Printf("  %s/%s: %s (mean |rel err| %.2f, sign bias %+.2f over %d samples)\n",
				d.Constraint, d.Vertex, d.Reason, d.MeanAbsRelErr, d.SignBias, d.Samples)
		}
	}
	return nil
}
