// Command twittersentiment runs the TwitterSentiment job (Section V-B)
// on the virtual-time cluster simulator: a synthetic two-week tweet trace
// replayed in 100 minutes against the Figure 7 topology with two latency
// constraints and reactive elastic scaling.
//
// Usage:
//
//	twittersentiment [-scale N] [-duration S] [-csv FILE] [-seed N]
//	                 [-guarantee at-most-once|at-least-once|exactly-once]
//	                 [-ckpt.interval S]
package main

import (
	"flag"
	"fmt"
	"os"

	"nephelix/internal/apps"
	"nephelix/internal/ckpt"
	"nephelix/internal/engine"
	"nephelix/internal/experiments"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

func main() {
	scale := flag.Int("scale", 4, "divide trace rates and parallelism by this factor")
	duration := flag.Float64("duration", 0, "truncate the 6000 s trace (0 = full)")
	csvPath := flag.String("csv", "", "write the time series to this CSV file")
	tracePath := flag.String("trace", "", "replay a recorded JSONL tweet trace (see cmd/tracegen)")
	speedup := flag.Float64("speedup", 1, "replay speed multiplier for -trace")
	seed := flag.Int64("seed", 1, "random seed")
	obsAddr := flag.String("obs.addr", "", "serve introspection endpoints (/healthz, /metrics, /timeseries, /slo, /dataplane, /dash, /debug/pprof, /scaler/decisions) on this address")
	decisionsPath := flag.String("decisions", "", "write the scaler's decision audit trail to this JSONL file")
	timeseriesPath := flag.String("timeseries", "", "write the telemetry time series and residual stats to this JSON file")
	quantile := flag.Float64("constraint.quantile", 0, "percentile constraints: bound this latency quantile instead of the mean, e.g. 0.99 for p99 (0 = paper's mean semantics)")
	guarantee := flag.String("guarantee", "at-most-once", "processing guarantee: at-most-once | at-least-once | exactly-once")
	ckptInterval := flag.Float64("ckpt.interval", 1, "checkpoint interval in virtual seconds (guaranteed runs)")
	engine.RegisterFlags(flag.CommandLine) // -engine.shards, -engine.wheel (live-engine runs)
	flag.Parse()

	g, err := ckpt.ParseGuarantee(*guarantee)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twittersentiment:", err)
		os.Exit(1)
	}
	if err := run(*scale, *duration, *csvPath, *tracePath, *speedup, *seed, *obsAddr, *decisionsPath, *timeseriesPath, g, *ckptInterval, *quantile); err != nil {
		fmt.Fprintln(os.Stderr, "twittersentiment:", err)
		os.Exit(1)
	}
}

func run(scale int, duration float64, csvPath, tracePath string, speedup float64, seed int64, obsAddr, decisionsPath, timeseriesPath string, guarantee ckpt.Guarantee, ckptInterval, quantile float64) error {
	opts := apps.DefaultTwitterSentimentOptions()
	opts.Seed = seed
	opts.Guarantee = guarantee
	opts.CheckpointInterval = ckptInterval
	opts.ConstraintQuantile = quantile
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		tweets, err := workload.ReadTweetTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		replay, err := workload.NewTweetReplay(tweets, speedup)
		if err != nil {
			return err
		}
		opts.Replay = replay
		scale = 1 // the trace already carries its own rates
	}
	if scale > 1 && opts.Replay == nil {
		f := float64(scale)
		tr := *opts.Schedule
		tr.BaseRate /= f
		tr.DailyAmplitude /= f
		bursts := make([]workload.Burst, len(tr.Bursts))
		copy(bursts, tr.Bursts)
		for i := range bursts {
			bursts[i].ExtraRate /= f
		}
		tr.Bursts = bursts
		opts.Schedule = &tr
		div := func(v int) int {
			if r := v / scale; r > 0 {
				return r
			}
			return 1
		}
		opts.Sources = div(opts.Sources)
		opts.InitialHT = div(opts.InitialHT)
		opts.InitialFilter = div(opts.InitialFilter)
		opts.InitialSentiment = div(opts.InitialSentiment)
		opts.MaxElastic = div(opts.MaxElastic)
		opts.WorkerNodes = div(opts.WorkerNodes)
	}

	cfg, probes, err := apps.BuildTwitterSentiment(opts)
	if err != nil {
		return err
	}
	if duration > 0 {
		cfg.Duration = duration
	}
	recorder := obs.NewRecorder(0)
	telemetry := obs.NewTelemetry(0)
	cfg.Recorder = recorder
	cfg.Telemetry = telemetry
	if obsAddr != "" {
		srv, err := obs.Serve(obsAddr, obs.ServerConfig{Recorder: recorder, Telemetry: telemetry})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("introspection on http://%s\n", obsAddr)
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		return err
	}

	if opts.Replay != nil {
		peak, at := opts.Replay.PeakRate()
		fmt.Printf("TwitterSentiment replaying %d tweets over %.0f s (peak ≈%.0f tweets/s at %d s)...\n",
			opts.Replay.Len(), opts.Replay.Duration(), peak, at)
	} else {
		fmt.Printf("TwitterSentiment at 1/%d scale (trace %.0f s, peak ≈%.0f tweets/s)...\n",
			scale, cfg.Duration, 6734.0/float64(scale))
	}
	res, err := s.Run()
	if err != nil {
		return err
	}

	hot := res.Probes[apps.HotTopicsProbe]
	sent := res.Probes[apps.SentimentProbe]
	fmt.Printf("\nconstraint 1 (hot topics, 215 ms): met %.0f%% of %d intervals; mean %.0f ms, p95 %.0f ms\n",
		hot.Fulfillment*100, hot.Intervals, hot.Mean*1000, hot.P95*1000)
	fmt.Printf("constraint 2 (sentiment, 30 ms):   met %.0f%% of %d intervals; mean %.1f ms, p95 %.1f ms\n",
		sent.Fulfillment*100, sent.Intervals, sent.Mean*1000, sent.P95*1000)
	if quantile > 0 {
		fmt.Printf("percentile fulfillment (%s): hot topics %.0f%%, sentiment %.0f%%\n",
			model.QuantileLabel(quantile), hot.TailFulfillment*100, sent.TailFulfillment*100)
	}
	fmt.Printf("tweets emitted: %d; mean task CPU utilization %.1f%%\n",
		res.Emitted[apps.TSSource]*int64(scale), res.MeanCPUUtilization*100)
	fmt.Printf("scale-ups %d, scale-downs %d; peak parallelism HT=%d F=%d S=%d\n",
		res.ScaleUps, res.ScaleDowns,
		res.PeakParallelism[apps.TSHotTopics]*scale,
		res.PeakParallelism[apps.TSFilter]*scale,
		res.PeakParallelism[apps.TSSentiment]*scale)
	fmt.Printf("task-hours (paper scale): %.1f\n", res.TaskHours*float64(scale))
	if guarantee.Enabled() {
		fmt.Printf("guarantee %s: %d checkpoints committed (%d aborted), %d offsets committed, %d replayed\n",
			guarantee, res.CheckpointsCommitted, res.CheckpointsAborted, res.CommittedOffsets, res.ReplayedItems)
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteRowsCSV(f, res.Rows, float64(scale)); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", csvPath, len(res.Rows))
	}
	if decisionsPath != "" {
		f, err := os.Create(decisionsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := recorder.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d decision events)\n", decisionsPath, len(recorder.Decisions()))
	}
	if timeseriesPath != "" {
		f, err := os.Create(timeseriesPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := telemetry.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d series)\n", timeseriesPath, telemetry.Store().Len())
	}
	if drift := telemetry.Residuals().DriftFlags(); len(drift) > 0 {
		fmt.Printf("model drift detected in %d constraint/vertex cells:\n", len(drift))
		for _, d := range drift {
			fmt.Printf("  %s/%s: %s (mean |rel err| %.2f, sign bias %+.2f over %d samples)\n",
				d.Constraint, d.Vertex, d.Reason, d.MeanAbsRelErr, d.SignBias, d.Samples)
		}
	}
	return nil
}
