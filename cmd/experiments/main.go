// Command experiments regenerates the paper's evaluation: every measured
// figure and table (Figure 3, Figure 5, Figure 6, the Section V-A
// task-hours sweep, Figure 8) plus the fault-injection recovery run,
// the processing-guarantee sweep, the tail-latency observability run
// (quantile-sketch validation, p99 attribution, SLO error budgets) and
// the tail-aware scaling run (percentile vs mean constraints on the
// bursty tweet trace), writing CSV time series and printing the shape
// checks against the paper's reported results.
//
// Usage:
//
//	experiments [-out DIR] [-paper] [-guarantee MODE] [-ckpt.interval S]
//	            [fig3|fig5|fig6|taskhours|fig8|faults|guarantees|tails|tailscaler|dataplane|bench|all]
//
// Without -paper the quick (laptop-scale) variants run; -paper uses the
// full 130-node topology and 60 s steps (minutes of wall-clock time).
// -guarantee (at-most-once | at-least-once | exactly-once) and
// -ckpt.interval apply to the faults experiment; the guarantees
// subcommand sweeps all modes and intervals regardless.
// The bench subcommand (not part of all) runs the micro-benchmark suite
// and writes BENCH_sim.json plus the engine data-plane suite's
// BENCH_engine.json for CI artifact diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"nephelix/internal/ckpt"
	"nephelix/internal/engine"
	"nephelix/internal/experiments"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
)

// recorder and telemetry are the process-wide observability plane: the
// faults experiment records its scaling decisions and time series here,
// and -obs.addr exposes them live.
var (
	recorder  = obs.NewRecorder(0)
	telemetry = obs.NewTelemetry(0)
	tracer    = obs.NewTracer(64)
)

func main() {
	out := flag.String("out", "results", "directory for CSV output")
	paper := flag.Bool("paper", false, "run at full paper scale (slow)")
	guarantee := flag.String("guarantee", "at-most-once", "processing guarantee for the faults experiment: at-most-once | at-least-once | exactly-once")
	ckptInterval := flag.Float64("ckpt.interval", 1, "checkpoint interval in virtual seconds (guaranteed faults run)")
	obsAddr := flag.String("obs.addr", "", "serve introspection endpoints (/healthz, /metrics, /timeseries, /slo, /dataplane, /dash, /debug/pprof, /scaler/decisions) on this address")
	obsLinger := flag.Duration("obs.linger", 0, "keep the introspection server alive this long after the experiments finish (for scraping a completed run)")
	engine.RegisterFlags(flag.CommandLine) // -engine.shards, -engine.wheel (live-engine bench runs)
	flag.Parse()

	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, obs.ServerConfig{Recorder: recorder, Telemetry: telemetry, Tracer: tracer})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("introspection on http://%s\n", *obsAddr)
	}
	g, err := ckpt.ParseGuarantee(*guarantee)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	if err := run(*out, *paper, which, g, *ckptInterval); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *obsAddr != "" && *obsLinger > 0 {
		fmt.Printf("lingering %s for scrapes of http://%s\n", *obsLinger, *obsAddr)
		time.Sleep(*obsLinger)
	}
}

func run(outDir string, paper bool, which string, guarantee ckpt.Guarantee, ckptInterval float64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if which == "bench" {
		return runBench(outDir)
	}
	all := which == "all"
	failures := 0

	if all || which == "fig3" {
		n, err := runFig3(outDir, paper)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "fig5" {
		n, err := runFig5(outDir)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "fig6" {
		n, err := runFig6(outDir, paper)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "taskhours" {
		n, err := runTaskHours(outDir, paper)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "fig8" {
		n, err := runFig8(outDir, paper)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "faults" {
		n, err := runFaults(outDir, paper, guarantee, ckptInterval)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "guarantees" {
		n, err := runGuarantees(outDir, paper)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "tails" {
		n, err := runTails(outDir, paper)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "tailscaler" {
		n, err := runTailScaler(outDir)
		if err != nil {
			return err
		}
		failures += n
	}
	if all || which == "dataplane" {
		n, err := runDataplane(outDir)
		if err != nil {
			return err
		}
		failures += n
	}
	if !all && which != "fig3" && which != "fig5" && which != "fig6" && which != "taskhours" && which != "fig8" && which != "faults" && which != "guarantees" && which != "tails" && which != "tailscaler" && which != "dataplane" {
		return fmt.Errorf("unknown experiment %q (want fig3|fig5|fig6|taskhours|fig8|faults|guarantees|tails|tailscaler|dataplane|bench|all)", which)
	}
	if failures > 0 {
		return fmt.Errorf("%d shape check(s) failed", failures)
	}
	fmt.Println("\nall shape checks passed")
	return nil
}

func writeCSV(path string, rows []sim.Row, scale float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteRowsCSV(f, rows, scale); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (%d rows)\n", path, len(rows))
	return nil
}

func report(name string, checks experiments.CheckList, elapsed time.Duration) int {
	fmt.Printf("\n=== %s (%s) ===\n%s", name, elapsed.Round(time.Millisecond), checks)
	return len(checks.Failed())
}

func runFig3(outDir string, paper bool) (int, error) {
	opts := experiments.Fig3Quick()
	if paper {
		opts = experiments.Fig3Paper()
	}
	start := time.Now()
	res, err := experiments.RunFig3(opts)
	if err != nil {
		return 0, err
	}
	n := report("Figure 3: batching trade-off under static provisioning", res.Checks, time.Since(start))
	for name, c := range res.Configs {
		path := filepath.Join(outDir, "fig3_"+string(name)+".csv")
		if err := writeCSV(path, c.Rows, float64(opts.Scale)); err != nil {
			return n, err
		}
	}
	return n, nil
}

func runFig5(outDir string) (int, error) {
	start := time.Now()
	res, err := experiments.RunFig5(experiments.Fig5Quick())
	if err != nil {
		return 0, err
	}
	n := report("Figure 5: Rebalance solution-candidate surface", res.Checks, time.Since(start))
	path := filepath.Join(outDir, "fig5_surface.csv")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	fmt.Fprintln(f, "p1,p2,p3_min,total")
	for _, pt := range res.Points {
		fmt.Fprintf(f, "%d,%d,%d,%d\n", pt.P1, pt.P2, pt.P3, pt.Total)
	}
	fmt.Printf("  wrote %s (%d cells; optimum F=%d at %d cells)\n",
		path, len(res.Points), res.OptimumTotal, res.OptimaCount)
	return n, nil
}

func runFig6(outDir string, paper bool) (int, error) {
	opts := experiments.Fig6Quick()
	if paper {
		opts = experiments.Fig6Paper()
	}
	start := time.Now()
	res, err := experiments.RunFig6(opts)
	if err != nil {
		return 0, err
	}
	n := report("Figure 6: elastic vs unelastic PrimeTester", res.Checks, time.Since(start))
	if err := writeCSV(filepath.Join(outDir, "fig6_elastic.csv"), res.ElasticRows, float64(opts.Scale)); err != nil {
		return n, err
	}
	if err := writeCSV(filepath.Join(outDir, "fig6_baseline.csv"), res.BaselineRows, float64(opts.Scale)); err != nil {
		return n, err
	}
	return n, nil
}

func runTaskHours(outDir string, paper bool) (int, error) {
	opts := experiments.TaskHoursQuick()
	if paper {
		opts.Fig6Options = experiments.Fig6Paper()
	}
	start := time.Now()
	res, err := experiments.RunTaskHours(opts)
	if err != nil {
		return 0, err
	}
	n := report("Section V-A: task-hours vs latency constraint", res.Checks, time.Since(start))
	path := filepath.Join(outDir, "taskhours.csv")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	fmt.Fprintln(f, "bound_ms,task_hours,fulfillment")
	for i, b := range res.Options.Bounds {
		fmt.Fprintf(f, "%s,%s,%s\n",
			strconv.FormatFloat(float64(b.Milliseconds()), 'f', -1, 64),
			strconv.FormatFloat(res.TaskHours[i], 'f', 2, 64),
			strconv.FormatFloat(res.Fulfillment[i], 'f', 3, 64))
	}
	fmt.Printf("  wrote %s\n", path)
	return n, nil
}

func runFaults(outDir string, paper bool, guarantee ckpt.Guarantee, ckptInterval float64) (int, error) {
	opts := experiments.FaultsQuick()
	if paper {
		opts = experiments.FaultsPaper()
	}
	opts.Guarantee = guarantee
	opts.CheckpointInterval = ckptInterval
	opts.Recorder = recorder
	opts.Telemetry = telemetry
	opts.Tracer = tracer
	start := time.Now()
	res, err := experiments.RunFaults(opts)
	if err != nil {
		return 0, err
	}
	n := report("Fault injection: tester-task kill mid-plateau, elastic recovery", res.Checks, time.Since(start))
	if err := writeCSV(filepath.Join(outDir, "faults.csv"), res.Rows, float64(opts.Scale)); err != nil {
		return n, err
	}
	path := filepath.Join(outDir, "faults_decisions.jsonl")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	if err := recorder.WriteJSONL(f); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d decision events)\n", path, len(recorder.Decisions()))

	tsPath := filepath.Join(outDir, "faults_timeseries.json")
	tf, err := os.Create(tsPath)
	if err != nil {
		return n, err
	}
	defer tf.Close()
	if err := telemetry.WriteJSON(tf); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d series)\n", tsPath, telemetry.Store().Len())
	return n, nil
}

func runGuarantees(outDir string, paper bool) (int, error) {
	opts := experiments.GuaranteesQuick()
	if paper {
		opts = experiments.GuaranteesPaper()
	}
	opts.Telemetry = telemetry
	start := time.Now()
	res, err := experiments.RunFaultsGuarantees(opts)
	if err != nil {
		return 0, err
	}
	n := report("Processing guarantees: mode sweep under mid-plateau kill", res.Checks, time.Since(start))
	path := filepath.Join(outDir, "guarantees.csv")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	fmt.Fprintln(f, "mode,ckpt_interval_s,emitted,delivered,distinct,lost,holes,replayed,dup_detected,dup_delivered,ckpt_committed,ckpt_aborted,recovery_intervals,recovery_window_s,fulfillment")
	scale := int64(opts.Scale)
	for _, r := range res.Runs {
		fmt.Fprintf(f, "%s,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%.3f\n",
			r.Mode, r.CheckpointInterval,
			r.Emitted*scale, r.Delivered*scale, r.Distinct*scale, r.Lost*scale,
			r.Holes*scale, r.Replayed*scale, r.DupDetected*scale, r.DupDelivered*scale,
			r.CheckpointsCommitted, r.CheckpointsAborted,
			r.RecoveryIntervals, r.RecoveryWindow, r.Fulfillment)
	}
	fmt.Printf("  wrote %s (%d runs, kill at t=%.0fs)\n", path, len(res.Runs), res.KillTime)

	tsPath := filepath.Join(outDir, "guarantees_timeseries.json")
	tf, err := os.Create(tsPath)
	if err != nil {
		return n, err
	}
	defer tf.Close()
	if err := telemetry.WriteJSON(tf); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d series)\n", tsPath, telemetry.Store().Len())
	return n, nil
}

func runBench(outDir string) error {
	start := time.Now()
	suite, err := experiments.RunBenchSuite()
	if err != nil {
		return err
	}
	fmt.Printf("=== bench suite (%s) ===\n%s", time.Since(start).Round(time.Millisecond), suite)
	if err := writeBenchJSON(outDir, "BENCH_sim.json", suite); err != nil {
		return err
	}
	start = time.Now()
	engineSuite, err := experiments.RunEngineBenchSuite()
	if err != nil {
		return err
	}
	fmt.Printf("=== engine bench suite (%s) ===\n%s", time.Since(start).Round(time.Millisecond), engineSuite)
	return writeBenchJSON(outDir, "BENCH_engine.json", engineSuite)
}

func writeBenchJSON(outDir, name string, suite *experiments.BenchSuite) error {
	path := filepath.Join(outDir, name)
	data, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func runTails(outDir string, paper bool) (int, error) {
	opts := experiments.TailsQuick()
	if paper {
		opts = experiments.TailsPaper()
	}
	opts.Recorder = recorder
	opts.Telemetry = telemetry
	start := time.Now()
	res, err := experiments.RunTails(opts)
	if err != nil {
		return 0, err
	}
	n := report("Tails: sketch validation, p99 attribution, SLO budgets", res.Checks, time.Since(start))
	fmt.Print(res.Attribution)
	for _, st := range res.SLO {
		fmt.Printf("  SLO %s: p%g ≤ %.0f ms, budget remaining %.2f, burn %.2f, violations %d\n",
			st.Constraint, st.Quantile*100, st.BoundSeconds*1000,
			st.ErrorBudgetRemaining, st.BurnRate, st.Violations)
	}

	path := filepath.Join(outDir, "tails.csv")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	if err := res.WriteTailsCSV(f); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d hops)\n", path, len(res.Attribution.Hops))

	tsPath := filepath.Join(outDir, "tails_timeseries.json")
	tf, err := os.Create(tsPath)
	if err != nil {
		return n, err
	}
	defer tf.Close()
	if err := telemetry.WriteJSON(tf); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d series)\n", tsPath, telemetry.Store().Len())
	return n, nil
}

func runTailScaler(outDir string) (int, error) {
	opts := experiments.TailScalerQuick()
	opts.Recorder = recorder
	opts.Telemetry = telemetry
	start := time.Now()
	res, err := experiments.RunTailScaler(opts)
	if err != nil {
		return 0, err
	}
	n := report("Tail scaler: percentile vs mean constraints on the bursty trace", res.Checks, time.Since(start))
	fmt.Printf("  %s fulfillment gap on %s: %+.0f points; task-hour premium %.2f×\n",
		model.QuantileLabel(opts.Quantile), res.GapProbe, res.Gap*100, res.TaskHourRatio)
	fmt.Printf("  steady-trace tail model: mean |rel err| %.2f over %d predicted-vs-measured pairs\n",
		res.Steady.TailRelErr, res.Steady.TailRelErrSamples)

	path := filepath.Join(outDir, "tailscaler.csv")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	if err := res.WriteTailScalerCSV(f); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (3 variants)\n", path)

	tsPath := filepath.Join(outDir, "tailscaler_timeseries.json")
	tf, err := os.Create(tsPath)
	if err != nil {
		return n, err
	}
	defer tf.Close()
	if err := res.Tail.Telemetry.WriteJSON(tf); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d series)\n", tsPath, res.Tail.Telemetry.Store().Len())
	return n, nil
}

func runDataplane(outDir string) (int, error) {
	opts := experiments.DataplaneQuick()
	opts.Recorder = recorder
	opts.Telemetry = telemetry
	start := time.Now()
	res, err := experiments.RunDataplane(opts)
	if err != nil {
		return 0, err
	}
	n := report("Data plane: backpressure attribution on a consumer bottleneck", res.Checks, time.Since(start))

	path := filepath.Join(outDir, "dataplane.csv")
	f, err := os.Create(path)
	if err != nil {
		return n, err
	}
	defer f.Close()
	fmt.Fprintln(f, "edge,state,culprit,onsets,idle,producer_limited,consumer_limited,ring_saturated")
	for _, st := range res.Statuses {
		fmt.Fprintf(f, "%s,%s,%s,%d,%d,%d,%d,%d\n",
			st.Edge, st.State, st.Culprit, st.Onsets,
			st.Intervals[string(obs.BackpressureIdle)],
			st.Intervals[string(obs.BackpressureProducerLimited)],
			st.Intervals[string(obs.BackpressureConsumerLimited)],
			st.Intervals[string(obs.BackpressureRingSaturated)])
	}
	fmt.Printf("  wrote %s (%d edges)\n", path, len(res.Statuses))

	tsPath := filepath.Join(outDir, "dataplane_timeseries.json")
	tf, err := os.Create(tsPath)
	if err != nil {
		return n, err
	}
	defer tf.Close()
	if err := telemetry.WriteJSON(tf); err != nil {
		return n, err
	}
	fmt.Printf("  wrote %s (%d series)\n", tsPath, telemetry.Store().Len())
	return n, nil
}

func runFig8(outDir string, paper bool) (int, error) {
	opts := experiments.Fig8Quick()
	if paper {
		opts = experiments.Fig8Paper()
	}
	start := time.Now()
	res, err := experiments.RunFig8(opts)
	if err != nil {
		return 0, err
	}
	n := report("Figure 8: TwitterSentiment under reactive scaling", res.Checks, time.Since(start))
	if err := writeCSV(filepath.Join(outDir, "fig8.csv"), res.Rows, float64(opts.Scale)); err != nil {
		return n, err
	}
	return n, nil
}
