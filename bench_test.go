package nephelix_test

// One benchmark per measured figure/table of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md and
// micro-benchmarks of the core algorithms. The figure benchmarks execute
// the full experiment (simulated cluster, QoS plane, scaler) per
// iteration and report the headline quantities as custom metrics — the
// shapes themselves are asserted by the tests in internal/experiments.

import (
	"math/rand"
	"testing"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/core"
	"nephelix/internal/experiments"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// BenchmarkFig3PrimeTesterStatic regenerates Figure 3: the PrimeTester
// job under static provisioning across the four batching configurations.
// Paper shape: effective peaks ≈40k (instant flush), ≈52k (+30%, 20 ms
// adaptive), ≈63k (+58%, 16 KiB).
func BenchmarkFig3PrimeTesterStatic(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig3(experiments.Fig3Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	ifPeak := res.Configs[experiments.ConfigNepheleIF].EffectivePeak
	b.ReportMetric(ifPeak, "IF-peak-items/s")
	b.ReportMetric(res.Configs[experiments.Config20ms].EffectivePeak/ifPeak, "20ms-over-IF")
	b.ReportMetric(res.Configs[experiments.Config16KiB].EffectivePeak/ifPeak, "16KiB-over-IF")
	b.ReportMetric(float64(len(res.Checks.Failed())), "failed-checks")
}

// BenchmarkFig5SolutionSurface regenerates Figure 5: the
// solution-candidate surface of the Rebalance optimization for three job
// vertices.
func BenchmarkFig5SolutionSurface(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig5(experiments.Fig5Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OptimumTotal), "optimum-total-parallelism")
	b.ReportMetric(float64(res.OptimaCount), "optima-count")
	b.ReportMetric(float64(len(res.Checks.Failed())), "failed-checks")
}

// BenchmarkFig6PrimeTesterElastic regenerates Figure 6: the elastic
// 20 ms PrimeTester against the manually provisioned unelastic baseline.
// Paper shape: ≈91% fulfillment, warm-up dip to ≈36 tasks, p95 ≈30 ms,
// baseline mean ≥348 ms at comparable task-hours.
func BenchmarkFig6PrimeTesterElastic(b *testing.B) {
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig6(experiments.Fig6Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Fulfillment*100, "fulfillment-%")
	b.ReportMetric(res.ElasticP95*1000, "elastic-p95-ms")
	b.ReportMetric(res.BaselineMean*1000, "baseline-mean-ms")
	b.ReportMetric(res.ElasticTaskHours, "elastic-task-hours")
	b.ReportMetric(res.BaselineTaskHours, "baseline-task-hours")
	b.ReportMetric(float64(len(res.Checks.Failed())), "failed-checks")
}

// BenchmarkTaskHoursVsConstraint regenerates the Section V-A sweep:
// task-hours for ℓ = 20/30/40/50/100 ms (paper: 46.4/44.3/41.8/37.6 for
// the last four, decreasing).
func BenchmarkTaskHoursVsConstraint(b *testing.B) {
	opts := experiments.TaskHoursQuick()
	opts.Seeds = []int64{1} // single seed per iteration; tests average more
	var res *experiments.TaskHoursResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTaskHours(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TaskHours[0], "20ms-task-hours")
	b.ReportMetric(res.TaskHours[len(res.TaskHours)-1], "100ms-task-hours")
	b.ReportMetric(res.TaskHours[0]/res.TaskHours[len(res.TaskHours)-1], "spread")
}

// BenchmarkFig8TwitterSentiment regenerates Figure 8: the
// TwitterSentiment job on the synthetic two-week trace. Paper shape:
// constraint 1 ≈93%, constraint 2 ≈96%, Sentiment scale-up ≈28 tasks at
// the 6734 tweets/s spike, mean CPU utilization 55.7%.
func BenchmarkFig8TwitterSentiment(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig8(experiments.Fig8Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Fulfillment1*100, "c1-fulfillment-%")
	b.ReportMetric(res.Fulfillment2*100, "c2-fulfillment-%")
	b.ReportMetric(float64(res.SentimentBurstScaleUp), "burst-scaleup-tasks")
	b.ReportMetric(res.MeanCPUUtilization*100, "cpu-utilization-%")
	b.ReportMetric(float64(len(res.Checks.Failed())), "failed-checks")
}

// ablationRun executes a short elastic PrimeTester with the given scaler
// configuration and returns (fulfillment, taskHours, scale actions).
func ablationRun(b *testing.B, mutate func(*core.ScalerConfig)) (fulfillment, taskHours float64, actions int) {
	b.Helper()
	scaler := core.DefaultScalerConfig()
	if mutate != nil {
		mutate(&scaler)
	}
	opts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
		Sources: 32, Sinks: 32, PrimeTesters: 64, MinPT: 1, MaxPT: 520,
		Schedule: &workload.StepSchedule{
			WarmUpRate: 10000, StepDelta: 10000, IncrementSteps: 3, StepDuration: 15,
		},
		Mode:            sim.BatchAdaptive,
		ConstraintBound: 20 * time.Millisecond,
		Elastic:         true,
		Scaler:          scaler,
		WorkerNodes:     130,
		SlotsPerNode:    5,
		Seed:            1,
	}, 12)
	opts.Scaler = scaler
	cfg, probes, err := apps.BuildPrimeTester(opts)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	p := res.Probes[apps.PrimeProbe]
	return p.Fulfillment, res.TaskHours * 12, res.ScaleUps + res.ScaleDowns
}

// BenchmarkAblationErrorCoefficient compares the error-coefficient fit of
// Equation 4 across three settings: capped (default), uncapped
// (paper-literal) and disabled. The paper argues that without e the model
// may scale down when a scale-up is needed.
func BenchmarkAblationErrorCoefficient(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*core.ScalerConfig)
	}{
		{"capped", nil},
		{"uncapped", func(c *core.ScalerConfig) { c.Strategy.Model.ErrorCoefficientMax = 0 }},
		{"disabled", func(c *core.ScalerConfig) { c.Strategy.Model.UseErrorCoefficient = false }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var f, th float64
			for i := 0; i < b.N; i++ {
				f, th, _ = ablationRun(b, v.mutate)
			}
			b.ReportMetric(f*100, "fulfillment-%")
			b.ReportMetric(th, "task-hours")
		})
	}
}

// BenchmarkAblationInactivityWindow compares the post-scale-up inactivity
// phase (paper: 2 adjustment intervals) against no inactivity.
func BenchmarkAblationInactivityWindow(b *testing.B) {
	for _, intervals := range []int{0, 2, 4} {
		name := map[int]string{0: "none", 2: "paper-2", 4: "long-4"}[intervals]
		b.Run(name, func(b *testing.B) {
			var f, th float64
			var acts int
			for i := 0; i < b.N; i++ {
				f, th, acts = ablationRun(b, func(c *core.ScalerConfig) { c.InactivityIntervals = intervals })
			}
			b.ReportMetric(f*100, "fulfillment-%")
			b.ReportMetric(th, "task-hours")
			b.ReportMetric(float64(acts), "scale-actions")
		})
	}
}

// BenchmarkAblationQueueWaitFraction sweeps the Ŵ share of the latency
// budget (Algorithm 2 line 7; paper fixes 0.2, our default is 0.3).
func BenchmarkAblationQueueWaitFraction(b *testing.B) {
	for _, frac := range []float64{0.2, 0.3, 0.5} {
		name := map[float64]string{0.2: "paper-0.2", 0.3: "default-0.3", 0.5: "loose-0.5"}[frac]
		b.Run(name, func(b *testing.B) {
			var f, th float64
			for i := 0; i < b.N; i++ {
				f, th, _ = ablationRun(b, func(c *core.ScalerConfig) {
					c.Strategy.Batching.QueueWaitFraction = frac
				})
			}
			b.ReportMetric(f*100, "fulfillment-%")
			b.ReportMetric(th, "task-hours")
		})
	}
}

// BenchmarkAblationDeadBand evaluates the scaling-action dead band (our
// implementation of the paper's future-work item "reduce the number of
// scaling actions"): fewer actions at slightly higher resource cost.
func BenchmarkAblationDeadBand(b *testing.B) {
	for _, frac := range []float64{0, 0.15, 0.3} {
		name := map[float64]string{0: "off", 0.15: "band-15%", 0.3: "band-30%"}[frac]
		b.Run(name, func(b *testing.B) {
			var f, th float64
			var acts int
			for i := 0; i < b.N; i++ {
				f, th, acts = ablationRun(b, func(c *core.ScalerConfig) { c.DeadBandFraction = frac })
			}
			b.ReportMetric(f*100, "fulfillment-%")
			b.ReportMetric(th, "task-hours")
			b.ReportMetric(float64(acts), "scale-actions")
		})
	}
}

// BenchmarkAblationRebalanceStepSize compares Algorithm 1's variable step
// size against unit (+1) steps on a deep asymmetric problem — the
// O(n log n · m) complexity discussion of Section IV-D.
func BenchmarkAblationRebalanceStepSize(b *testing.B) {
	sm := &core.SequenceModel{Vertices: []*core.VertexModel{
		{Name: "a", Current: 1, Min: 1, Max: 5000, A: 50, B: 0, E: 1},
		{Name: "b", Current: 1, Min: 1, Max: 8, A: 0.0001, B: 0, E: 1},
		{Name: "c", Current: 1, Min: 1, Max: 8, A: 0.0001, B: 0, E: 1},
	}}
	b.Run("variable", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			steps, _ = core.RebalanceSteps(sm, 0.050, false)
		}
		b.ReportMetric(float64(steps), "descent-iterations")
	})
	b.Run("unit", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			steps, _ = core.RebalanceSteps(sm, 0.050, true)
		}
		b.ReportMetric(float64(steps), "descent-iterations")
	})
}

// BenchmarkPredictionQuality scores the latency model's queue-wait
// predictions against subsequent measurements (the paper's future-work
// item "improving the prediction quality of our latency model").
func BenchmarkPredictionQuality(b *testing.B) {
	var res *experiments.PredictionQualityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunPredictionQuality(8, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MedianAbsRelError, "median-rel-error")
	b.ReportMetric(res.WithinFactor2*100, "within-2x-%")
	b.ReportMetric(float64(len(res.Samples)), "predictions")
}

// --- micro-benchmarks of the core algorithms ---

// benchSummary builds a representative summary for scaler benchmarks.
func benchSummary(p int) (*model.JobGraph, []*model.Constraint, *qos.Summary) {
	g := model.NewJobGraph()
	_ = g.AddVertex(model.JobVertex{Name: "src", Parallelism: 8, MinParallelism: 8, MaxParallelism: 8})
	_ = g.AddVertex(model.JobVertex{Name: "work", Parallelism: p, MinParallelism: 1, MaxParallelism: 1024})
	_ = g.AddVertex(model.JobVertex{Name: "sink", Parallelism: 8, MinParallelism: 8, MaxParallelism: 8})
	_ = g.AddEdge("src", "work", model.PatternRoundRobin)
	_ = g.AddEdge("work", "sink", model.PatternRoundRobin)
	seq, _ := model.ParseSequence(g, "src->work", "work", "work->sink")
	cons := []*model.Constraint{{Name: "c", Sequence: seq, Bound: 20 * time.Millisecond, Window: 10 * time.Second}}
	s := qos.NewSummary()
	s.Vertices["work"] = qos.VertexStats{
		TaskLatency: 0.003, ServiceTimeMean: 0.003, ServiceTimeCV: 0.5,
		InterarrivalMean: 0.006, InterarrivalCV: 1.0, Parallelism: p,
	}
	s.Edges[model.EdgeKey{Source: "src", Target: "work"}] = qos.EdgeStats{ChannelLatency: 0.002, OutputBatchLatency: 0.001}
	s.Edges[model.EdgeKey{Source: "work", Target: "sink"}] = qos.EdgeStats{ChannelLatency: 0.001, OutputBatchLatency: 0.0005}
	return g, cons, s
}

// BenchmarkScaleReactively measures one full Algorithm 2 decision.
func BenchmarkScaleReactively(b *testing.B) {
	g, cons, s := benchSummary(256)
	cur := map[string]int{"work": 256}
	cfg := core.DefaultStrategyConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ScaleReactively(cfg, g, cons, s, cur); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebalance measures the gradient descent on a 5-vertex problem.
func BenchmarkRebalance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sm := &core.SequenceModel{}
	for i := 0; i < 5; i++ {
		sm.Vertices = append(sm.Vertices, &core.VertexModel{
			Name: string(rune('a' + i)), Current: 16, Min: 1, Max: 512,
			A: 0.01 + rng.Float64()*0.2, B: rng.Float64() * 100, E: 1,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Rebalance(sm, 0.004, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSink keeps benchmark results alive against dead-code elimination.
var benchSink float64

// BenchmarkKingmanWait measures the queue-wait formula itself.
func BenchmarkKingmanWait(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += core.KingmanWait(80, 0.01+float64(i%7)*1e-5, 1.2, 0.8)
	}
	benchSink = s
}

// BenchmarkBatchingControllerUpdate measures one adaptive-batching round.
func BenchmarkBatchingControllerUpdate(b *testing.B) {
	_, cons, s := benchSummary(64)
	c := qos.NewBatchingController(qos.DefaultBatchingPolicy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(s, cons)
	}
}

// BenchmarkSummaryMerge measures merging 8 partial summaries of 64 tasks
// each into a global summary (the master's per-adjustment work).
func BenchmarkSummaryMerge(b *testing.B) {
	partials := make([]*qos.PartialSummary, 8)
	for i := range partials {
		m := qos.NewManager(qos.DefaultManagerConfig())
		for t := 0; t < 64; t++ {
			m.ReportTask(qos.TaskReport{
				Task:         model.TaskID{Vertex: "work", Index: i*64 + t},
				ServiceCount: 100, ServiceMean: 0.003, ServiceCV: 0.5,
				InterarrivalCount: 100, InterarrivalMean: 0.006, InterarrivalCV: 1.0,
				TaskLatencyCount: 100, TaskLatencyMean: 0.003,
			})
		}
		partials[i] = m.PartialSummary()
	}
	par := map[string]int{"work": 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qos.MergePartials(par, partials...)
	}
}

// BenchmarkSimulatorEvents measures raw simulator throughput: a saturated
// single-server pipeline, reported in processed items per second of
// wall-clock time.
func BenchmarkSimulatorEvents(b *testing.B) {
	benchSimulatorEvents(b, nil)
}

// BenchmarkSimulatorEventsObsDisabled runs the same workload with a
// disabled tracer (sample rate 0), an attached recorder and a nil
// telemetry plane. Compare against BenchmarkSimulatorEvents: the
// observability hooks must not cost measurable throughput when off.
func BenchmarkSimulatorEventsObsDisabled(b *testing.B) {
	benchSimulatorEvents(b, func(cfg *sim.Config) {
		cfg.Tracer = obs.NewTracer(0)
		cfg.Recorder = obs.NewRecorder(0)
		cfg.Telemetry = nil
	})
}

// BenchmarkSimulatorEventsTelemetry runs the workload with an enabled
// telemetry plane (time-series store + residual monitor) to expose the
// cost of live scraping relative to BenchmarkSimulatorEvents.
func BenchmarkSimulatorEventsTelemetry(b *testing.B) {
	benchSimulatorEvents(b, func(cfg *sim.Config) {
		cfg.Telemetry = obs.NewTelemetry(0)
	})
}

func benchSimulatorEvents(b *testing.B, configure func(*sim.Config)) {
	for i := 0; i < b.N; i++ {
		opts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
			Sources: 32, Sinks: 32, PrimeTesters: 64,
			Schedule: &workload.StepSchedule{
				WarmUpRate: 10000, StepDelta: 10000, IncrementSteps: 1, StepDuration: 10,
			},
			Mode:        sim.BatchInstant,
			WorkerNodes: 130, SlotsPerNode: 5, Seed: int64(i),
		}, 16)
		cfg, probes, err := apps.BuildPrimeTester(opts)
		if err != nil {
			b.Fatal(err)
		}
		if configure != nil {
			configure(&cfg)
		}
		s, err := sim.New(cfg, probes)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Emitted[apps.PTSource]), "items-simulated")
	}
}

// BenchmarkEngineThroughput measures the live engine's data plane:
// delivered records per second of a saturated src→work→sink pipeline for
// every output-batching mode × wiring pattern. One iteration runs about
// a second of wall-clock time; run with -benchtime 1x. The allocation
// columns cover the whole run (setup amortized by ~10^5 records), so
// B/op and allocs/op track the pooled data plane's steady-state budget.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, c := range experiments.EngineBenchCases() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			var m map[string]float64
			for i := 0; i < b.N; i++ {
				var err error
				m, err = experiments.RunEngineBench(c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m["records/s"], "records/s")
			b.ReportMetric(m["records"], "records-delivered")
		})
	}
}

// BenchmarkMillerRabin measures the probable-primality test used by the
// live PrimeTester workload.
func BenchmarkMillerRabin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nums := make([]uint64, 1024)
	for i := range nums {
		nums[i] = rng.Uint64() | 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.IsProbablePrime(nums[i%len(nums)])
	}
}
