// Sentiment: the paper's TwitterSentiment job (Section V-B) at laptop
// scale on the live engine, with real JSON tweets, windowed hot-topic
// aggregation and lexicon sentiment scoring.
//
// Topology (Figure 7):
//
//	TweetSource ─e1→ Filter ─e2→ Sentiment ─e3→ Sink
//	     └──e4→ HotTopics ─e5→ Merger ─e6 (broadcast)→ Filter
//
// Two latency constraints are enforced: 400 ms on the hot-topics path
// (window-dominated) and 60 ms on the filter→sentiment path. The elastic
// scaler adjusts HotTopics, Filter and Sentiment as the synthetic
// diurnal tweet rate moves.
//
// Run with:
//
//	go run ./examples/sentiment
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"nephelix/internal/engine"
	"nephelix/internal/model"
	"nephelix/internal/probe"
	"nephelix/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sentiment:", err)
		os.Exit(1)
	}
}

// hotTopics counts topics over 200 ms windows and forwards its partial
// top-5 per window. The emitted list inherits the oldest sampled tweet's
// emit time so the sequence latency of the window path stays measurable
// across the aggregation (read-write semantics).
type hotTopics struct {
	counts  map[string]int
	oldest  time.Time
	sampled bool
}

func (h *hotTopics) Process(_ *engine.Context, rec engine.Record) {
	tweet := rec.Value.(workload.Tweet)
	for _, topic := range tweet.Topics {
		h.counts[topic]++
	}
	if rec.Sampled && (!h.sampled || rec.EmitTime.Before(h.oldest)) {
		h.oldest = rec.EmitTime
		h.sampled = true
	}
}

func (h *hotTopics) TimerInterval() time.Duration { return 200 * time.Millisecond }

func (h *hotTopics) OnTimer(ctx *engine.Context) {
	if len(h.counts) == 0 {
		return
	}
	ctx.Emit(0, engine.Record{
		Value:    topKTopics(h.counts, 5),
		EmitTime: h.oldest,
		Sampled:  h.sampled,
	})
	h.counts = make(map[string]int)
	h.sampled = false
}

// merger merges partial lists on receipt and broadcasts the global top-5.
type merger struct {
	weights map[string]float64
}

func (m *merger) Process(ctx *engine.Context, rec engine.Record) {
	for t, w := range m.weights {
		if w *= 0.9; w < 0.05 {
			delete(m.weights, t)
		} else {
			m.weights[t] = w
		}
	}
	partial := rec.Value.([]string)
	for rank, topic := range partial {
		m.weights[topic] += float64(len(partial) - rank)
	}
	top := make(map[string]int, len(m.weights))
	for t, w := range m.weights {
		top[t] = int(w * 100)
	}
	out := rec
	out.Value = topKTopics(top, 5)
	ctx.Emit(0, out)
}

// filter matches tweets against the latest global hot list; list records
// also terminate the hot-topics constraint.
type filter struct {
	hot      map[string]bool
	hotProbe *probe.Probe
}

func (f *filter) Process(ctx *engine.Context, rec engine.Record) {
	switch v := rec.Value.(type) {
	case []string:
		f.hot = make(map[string]bool, len(v))
		for _, t := range v {
			f.hot[t] = true
		}
		if rec.Sampled {
			f.hotProbe.Record(time.Since(rec.EmitTime).Seconds())
		}
	case []byte: // JSON tweet line, as replayed from the dataset
		tweet, err := workload.DecodeTweet(v)
		if err != nil {
			return
		}
		for _, topic := range tweet.Topics {
			if f.hot[topic] {
				out := rec
				out.Value = tweet
				ctx.Emit(0, out)
				return
			}
		}
	}
}

// sentiment scores matching tweets with the lexicon classifier.
type sentiment struct{}

func (sentiment) Process(ctx *engine.Context, rec engine.Record) {
	tweet := rec.Value.(workload.Tweet)
	out := rec
	out.Value = scored{topic: tweet.Topics[0], s: workload.ScoreSentiment(tweet.Text)}
	ctx.Emit(0, out)
}

type scored struct {
	topic string
	s     workload.Sentiment
}

// sink aggregates per-topic sentiment and terminates constraint 2.
type sink struct {
	mu    *sync.Mutex
	tally map[string][3]int
	probe *probe.Probe
}

func (s *sink) Process(_ *engine.Context, rec engine.Record) {
	sc := rec.Value.(scored)
	s.mu.Lock()
	t := s.tally[sc.topic]
	t[int(sc.s)-1]++
	s.tally[sc.topic] = t
	s.mu.Unlock()
	if rec.Sampled {
		s.probe.Record(time.Since(rec.EmitTime).Seconds())
	}
}

func topKTopics(counts map[string]int, k int) []string {
	type kv struct {
		t string
		n int
	}
	all := make([]kv, 0, len(counts))
	for t, n := range counts {
		all = append(all, kv{t, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = all[i].t
	}
	return out
}

func run() error {
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "TweetSource", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "HotTopics", Parallelism: 1, MinParallelism: 1, MaxParallelism: 4, LatencyMode: model.LatencyReadWrite},
		{Name: "Merger", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "Filter", Parallelism: 1, MinParallelism: 1, MaxParallelism: 4},
		{Name: "Sentiment", Parallelism: 1, MinParallelism: 1, MaxParallelism: 6},
		{Name: "Sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			return err
		}
	}
	for _, e := range []struct {
		src, dst string
		pattern  model.WiringPattern
	}{
		{"TweetSource", "Filter", model.PatternRoundRobin},
		{"TweetSource", "HotTopics", model.PatternRoundRobin},
		{"HotTopics", "Merger", model.PatternRoundRobin},
		{"Merger", "Filter", model.PatternBroadcast},
		{"Filter", "Sentiment", model.PatternRoundRobin},
		{"Sentiment", "Sink", model.PatternRoundRobin},
	} {
		if err := g.AddEdge(e.src, e.dst, e.pattern); err != nil {
			return err
		}
	}

	seq1, err := model.ParseSequence(g, "TweetSource->HotTopics", "HotTopics",
		"HotTopics->Merger", "Merger", "Merger->Filter", "Filter")
	if err != nil {
		return err
	}
	seq2, err := model.ParseSequence(g, "TweetSource->Filter", "Filter",
		"Filter->Sentiment", "Sentiment", "Sentiment->Sink")
	if err != nil {
		return err
	}
	c1 := &model.Constraint{Name: "hot-topics", Sequence: seq1, Bound: 400 * time.Millisecond, Window: 5 * time.Second}
	c2 := &model.Constraint{Name: "sentiment", Sequence: seq2, Bound: 60 * time.Millisecond, Window: 5 * time.Second}

	probes := probe.NewProbeSet()
	hotProbe := probes.Probe("hot-topics")
	hotProbe.BoundSeconds = c1.Bound.Seconds()
	sentProbe := probes.Probe("sentiment")
	sentProbe.BoundSeconds = c2.Bound.Seconds()

	gen := workload.NewTweetGenerator(60, 1.2, 42)
	trace := &workload.DiurnalSchedule{
		BaseRate:       60,
		DailyAmplitude: 240,
		CycleLength:    6,
		Length:         15,
		NoiseAmplitude: 0.1,
		Seed:           7,
		Bursts:         []workload.Burst{{Start: 7, Length: 3, ExtraRate: 250, Topic: 3}},
	}
	start := time.Now()

	snk := &sink{mu: &sync.Mutex{}, tally: make(map[string][3]int), probe: sentProbe}
	spec := engine.NewJobSpec(g).
		SetSource("TweetSource", engine.SourceSpec{
			Schedule:          trace,
			SampleProbability: 0.3,
			Emit: func(ctx *engine.Context) {
				topic, w := trace.BurstWeight(time.Since(start).Seconds())
				tweet := gen.Next(time.Now().UnixMilli(), topic, w)
				line, err := tweet.EncodeJSON()
				if err != nil {
					return
				}
				rec := engine.Record{Value: line, Key: tweet.ID, EmitTime: time.Now(), Sampled: ctx.Sample()}
				ctx.Emit(0, rec) // e1 → Filter (JSON bytes)
				parsed := rec
				parsed.Value = tweet
				ctx.Emit(1, parsed) // e4 → HotTopics (decoded)
			},
		}).
		SetUDF("HotTopics", func(int) engine.UDF { return &hotTopics{counts: make(map[string]int)} }).
		SetUDF("Merger", func(int) engine.UDF { return &merger{weights: make(map[string]float64)} }).
		SetUDF("Filter", func(int) engine.UDF { return &filter{hot: map[string]bool{}, hotProbe: hotProbe} }).
		SetUDF("Sentiment", func(int) engine.UDF { return sentiment{} }).
		SetUDF("Sink", func(int) engine.UDF { return snk }).
		AddConstraint(c1).
		AddConstraint(c2)

	eng := engine.New(engine.Config{
		Elastic:             true,
		MeasurementInterval: 200 * time.Millisecond,
		AdjustmentInterval:  time.Second,
	})
	exec, err := eng.Submit(spec, probes)
	if err != nil {
		return err
	}

	fmt.Println("replaying synthetic tweet trace (≈15 s, burst on #topic003 mid-run)...")
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for !exec.Done() {
		<-ticker.C
		fmt.Printf("  t=%-4s HT=%d F=%d S=%d  hot-path=%.0f ms  sentiment-path=%.1f ms\n",
			time.Since(start).Round(time.Second),
			exec.Parallelism("HotTopics"), exec.Parallelism("Filter"), exec.Parallelism("Sentiment"),
			hotProbe.TotalMean()*1000, sentProbe.TotalMean()*1000)
	}
	if err := exec.Wait(context.Background()); err != nil {
		return err
	}

	f1, n1 := hotProbe.Fulfillment()
	f2, n2 := sentProbe.Fulfillment()
	fmt.Printf("\nconstraint 1 (hot topics, %v): met %.0f%% of %d intervals, mean %.0f ms\n",
		c1.Bound, f1*100, n1, hotProbe.TotalMean()*1000)
	fmt.Printf("constraint 2 (sentiment, %v):  met %.0f%% of %d intervals, mean %.1f ms\n",
		c2.Bound, f2*100, n2, sentProbe.TotalMean()*1000)

	fmt.Println("\nper-topic sentiment on hot topics (neg/neu/pos):")
	snk.mu.Lock()
	topics := make([]string, 0, len(snk.tally))
	for t := range snk.tally {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	shown := 0
	for _, t := range topics {
		if shown >= 6 {
			break
		}
		v := snk.tally[t]
		fmt.Printf("  %-12s %4d / %4d / %4d\n", t, v[0], v[1], v[2])
		shown++
	}
	snk.mu.Unlock()
	return nil
}
