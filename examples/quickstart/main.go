// Quickstart: a three-stage streaming job on the live engine with a
// latency constraint and reactive elastic scaling.
//
// A source emits short sentences at a rising rate, a tokenizer splits
// them, and a counting sink tracks word frequencies. The job declares a
// 50 ms latency constraint over the whole pipeline; the engine's QoS
// plane batches adaptively and the elastic scaler grows and shrinks the
// tokenizer as the load changes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"nephelix/internal/engine"
	"nephelix/internal/model"
	"nephelix/internal/probe"
	"nephelix/internal/workload"
)

var sentences = []string{
	"streams must flow with low latency",
	"constraints bound the mean latency of sequences",
	"elastic scaling follows the offered load",
	"queueing theory predicts the waiting time",
	"batching trades latency for throughput",
}

// tokenizer splits sentences into words and forwards them.
type tokenizer struct{ spin time.Duration }

func (tk *tokenizer) Process(ctx *engine.Context, rec engine.Record) {
	// A small spin models per-sentence UDF work, making the scaling
	// visible at quickstart rates.
	end := time.Now().Add(tk.spin)
	for time.Now().Before(end) {
	}
	for _, w := range strings.Fields(rec.Value.(string)) {
		out := rec
		out.Value = w
		out.Key = hash(w)
		ctx.Emit(0, out)
	}
}

// counter tallies words and records end-to-end latency.
type counter struct {
	mu     *sync.Mutex
	counts map[string]int
	probe  *probe.Probe
}

func (c *counter) Process(_ *engine.Context, rec engine.Record) {
	c.mu.Lock()
	c.counts[rec.Value.(string)]++
	c.mu.Unlock()
	if rec.Sampled {
		c.probe.Record(time.Since(rec.EmitTime).Seconds())
	}
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Job graph: source -> tokenize (elastic 1..6) -> count.
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "source", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "tokenize", Parallelism: 1, MinParallelism: 1, MaxParallelism: 6},
		{Name: "count", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			return err
		}
	}
	if err := g.AddEdge("source", "tokenize", model.PatternRoundRobin); err != nil {
		return err
	}
	if err := g.AddEdge("tokenize", "count", model.PatternKeyBased); err != nil {
		return err
	}

	// 50 ms constraint over the whole pipeline.
	seq, err := model.ParseSequence(g, "source->tokenize", "tokenize", "tokenize->count")
	if err != nil {
		return err
	}
	constraint := &model.Constraint{
		Name:     "pipeline-50ms",
		Sequence: seq,
		Bound:    50 * time.Millisecond,
		Window:   5 * time.Second,
	}

	probes := probe.NewProbeSet()
	pr := probes.Probe("pipeline")
	pr.BoundSeconds = constraint.Bound.Seconds()

	cnt := &counter{mu: &sync.Mutex{}, counts: make(map[string]int), probe: pr}
	var emitted int

	// Load: 8 s ramp from 100 to 500 sentences/s and back.
	sched := &workload.StepSchedule{
		WarmUpRate:     100,
		StepDelta:      200,
		IncrementSteps: 2,
		StepDuration:   2,
	}

	spec := engine.NewJobSpec(g).
		SetSource("source", engine.SourceSpec{
			Schedule:          sched,
			SampleProbability: 0.5,
			Emit: func(ctx *engine.Context) {
				emitted++
				ctx.Emit(0, engine.Record{
					Value:    sentences[emitted%len(sentences)],
					EmitTime: time.Now(),
					Sampled:  ctx.Sample(),
				})
			},
		}).
		SetUDF("tokenize", func(int) engine.UDF { return &tokenizer{spin: 2 * time.Millisecond} }).
		SetUDF("count", func(int) engine.UDF { return cnt }).
		AddConstraint(constraint)

	eng := engine.New(engine.Config{
		Elastic:             true,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  500 * time.Millisecond,
	})
	exec, err := eng.Submit(spec, probes)
	if err != nil {
		return err
	}

	fmt.Println("running quickstart job (≈8 s)...")
	started := time.Now()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for !exec.Done() {
		<-ticker.C
		fmt.Printf("  t=%-4s tokenize parallelism=%d  mean latency=%.1f ms\n",
			time.Since(started).Round(time.Second),
			exec.Parallelism("tokenize"), pr.TotalMean()*1000)
	}
	if err := exec.Wait(context.Background()); err != nil {
		return err
	}

	fulfilled, intervals := pr.Fulfillment()
	ups, downs := exec.ScaleEvents()
	fmt.Printf("\ndone: %d sentences emitted, %d distinct words\n", emitted, len(cnt.counts))
	fmt.Printf("constraint %s met in %.0f%% of %d adjustment intervals\n",
		constraint.Bound, fulfilled*100, intervals)
	fmt.Printf("mean latency %.1f ms, p95 %.1f ms; scale-ups=%d scale-downs=%d, task-hours=%.4f\n",
		pr.TotalMean()*1000, pr.TotalP95()*1000, ups, downs, exec.TaskHours())
	top := ""
	best := 0
	cnt.mu.Lock()
	for w, n := range cnt.counts {
		if n > best {
			best, top = n, w
		}
	}
	cnt.mu.Unlock()
	fmt.Printf("most frequent word: %q (%d times)\n", top, best)
	return nil
}
