// PrimeTester: the paper's microbenchmark (Sections III and V-A) on the
// virtual-time cluster simulator — 32 sources feeding an elastic pool of
// probable-primality testers under a 20 ms latency constraint, load
// stepping up and down.
//
// The simulator executes a scaled-down topology of the paper's 130-node
// cluster in a few wall-clock seconds; per-task load and all control
// loops (QoS measurement, adaptive batching, reactive scaling) are
// identical to the paper-scale run.
//
// Run with:
//
//	go run ./examples/primetester [-scale N] [-elastic=false]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

func main() {
	scale := flag.Int("scale", 8, "divide the paper topology and rates by this factor")
	elastic := flag.Bool("elastic", true, "enable the reactive elastic scaler")
	flag.Parse()
	if err := run(*scale, *elastic); err != nil {
		fmt.Fprintln(os.Stderr, "primetester:", err)
		os.Exit(1)
	}
}

func run(scale int, elastic bool) error {
	base := apps.PrimeTesterOptions{
		Sources:      32,
		Sinks:        32,
		PrimeTesters: 128,
		MinPT:        1,
		MaxPT:        520,
		Schedule: &workload.StepSchedule{
			WarmUpRate:     10000,
			StepDelta:      10000,
			IncrementSteps: 4,
			StepDuration:   20,
		},
		Mode:            sim.BatchAdaptive,
		ConstraintBound: 20 * time.Millisecond,
		Elastic:         elastic,
		WorkerNodes:     130,
		SlotsPerNode:    5,
		Seed:            1,
	}
	opts := apps.ScalePrimeTesterOptions(base, scale)
	cfg, probes, err := apps.BuildPrimeTester(opts)
	if err != nil {
		return err
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		return err
	}

	fmt.Printf("simulating PrimeTester at 1/%d scale (elastic=%v)...\n\n", scale, elastic)
	res, err := s.Run()
	if err != nil {
		return err
	}

	fmt.Printf("%8s %12s %12s %12s %10s %10s\n",
		"time", "attempted/s", "delivered/s", "latency(ms)", "p95(ms)", "testers")
	for _, r := range res.Rows {
		if int(r.Time)%20 != 0 {
			continue
		}
		p := r.Probes[apps.PrimeProbe]
		fmt.Printf("%7.0fs %12.0f %12.0f %12.1f %10.1f %10d\n",
			r.Time,
			r.Attempted[apps.PTSource]*float64(scale),
			r.Processed[apps.PTSink]*float64(scale),
			p.Mean*1000, p.P95*1000,
			r.Parallelism[apps.PTWorker]*scale)
	}

	summary := res.Probes[apps.PrimeProbe]
	fmt.Printf("\nconstraint 20ms met in %.0f%% of %d adjustment intervals\n",
		summary.Fulfillment*100, summary.Intervals)
	fmt.Printf("overall mean %.1f ms, p95 %.1f ms\n", summary.Mean*1000, summary.P95*1000)
	fmt.Printf("task-hours (paper scale): %.1f   scale-ups: %d   scale-downs: %d\n",
		res.TaskHours*float64(scale), res.ScaleUps, res.ScaleDowns)
	fmt.Printf("peak tester parallelism: %d of %d\n",
		res.PeakParallelism[apps.PTWorker]*scale, base.MaxPT)
	return nil
}
