// Capacityplanner: offline what-if analysis with the paper's latency
// model (Section IV-C/IV-D), used directly as a library.
//
// Given measured per-task statistics for a three-stage pipeline (the kind
// of numbers any APM stack provides — arrival rates, service times and
// their variation, observed queue waits), the planner asks the Rebalance
// optimizer for the minimal total parallelism that keeps the modeled
// queue waiting time inside a budget, across a range of latency bounds.
//
// Run with:
//
//	go run ./examples/capacityplanner
package main

import (
	"fmt"
	"os"
	"time"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/qos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capacityplanner:", err)
		os.Exit(1)
	}
}

func run() error {
	// Pipeline: ingest -> parse -> enrich -> store.
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "ingest", Parallelism: 4, MinParallelism: 4, MaxParallelism: 4},
		{Name: "parse", Parallelism: 8, MinParallelism: 1, MaxParallelism: 128},
		{Name: "enrich", Parallelism: 12, MinParallelism: 1, MaxParallelism: 128},
		{Name: "store", Parallelism: 6, MinParallelism: 1, MaxParallelism: 64},
	} {
		if err := g.AddVertex(v); err != nil {
			return err
		}
	}
	for _, e := range [][2]string{{"ingest", "parse"}, {"parse", "enrich"}, {"enrich", "store"}} {
		if err := g.AddEdge(e[0], e[1], model.PatternRoundRobin); err != nil {
			return err
		}
	}
	seq, err := model.ParseSequence(g,
		"ingest->parse", "parse", "parse->enrich", "enrich", "enrich->store", "store")
	if err != nil {
		return err
	}

	// Measured statistics, as a QoS global summary. Arrival rates are per
	// task at the *current* parallelism; the model rescales them when it
	// explores other degrees of parallelism (Equation 5).
	summary := qos.NewSummary()
	summary.Vertices["parse"] = qos.VertexStats{
		TaskLatency: 0.0018, ServiceTimeMean: 0.0018, ServiceTimeCV: 0.6,
		InterarrivalMean: 1.0 / 450, InterarrivalCV: 1.1, Parallelism: 8,
	}
	summary.Vertices["enrich"] = qos.VertexStats{
		TaskLatency: 0.0045, ServiceTimeMean: 0.0045, ServiceTimeCV: 0.9,
		InterarrivalMean: 1.0 / 180, InterarrivalCV: 1.0, Parallelism: 12,
	}
	summary.Vertices["store"] = qos.VertexStats{
		TaskLatency: 0.0012, ServiceTimeMean: 0.0012, ServiceTimeCV: 0.4,
		InterarrivalMean: 1.0 / 600, InterarrivalCV: 1.2, Parallelism: 6,
	}
	summary.Edges[model.EdgeKey{Source: "ingest", Target: "parse"}] = qos.EdgeStats{
		ChannelLatency: 0.0035, OutputBatchLatency: 0.0010,
	}
	summary.Edges[model.EdgeKey{Source: "parse", Target: "enrich"}] = qos.EdgeStats{
		ChannelLatency: 0.0062, OutputBatchLatency: 0.0015,
	}
	summary.Edges[model.EdgeKey{Source: "enrich", Target: "store"}] = qos.EdgeStats{
		ChannelLatency: 0.0021, OutputBatchLatency: 0.0008,
	}

	fmt.Println("measured pipeline (per-task):")
	for _, name := range []string{"parse", "enrich", "store"} {
		v := summary.Vertices[name]
		fmt.Printf("  %-7s p=%-3d λ=%5.0f/s  S=%4.1f ms  ρ=%.2f\n",
			name, v.Parallelism, v.ArrivalRate(), v.ServiceTimeMean*1000, v.Utilization())
	}

	sm, err := core.BuildSequenceModel(g, seq, summary, core.DefaultModelOptions())
	if err != nil {
		return err
	}
	policy := qos.DefaultBatchingPolicy()

	fmt.Println("\nminimal parallelism per latency bound (Rebalance, Algorithm 1):")
	fmt.Printf("%10s %10s %8s %8s %8s %8s\n", "bound", "Ŵ budget", "parse", "enrich", "store", "total")
	for _, bound := range []time.Duration{
		15 * time.Millisecond,
		20 * time.Millisecond,
		30 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
	} {
		c := &model.Constraint{Name: "plan", Sequence: seq, Bound: bound, Window: 10 * time.Second}
		wLimit := policy.QueueWaitLimit(summary, c)
		p, err := core.Rebalance(sm, wLimit, nil)
		if err != nil {
			fmt.Printf("%10v %9.1fms %26s\n", bound, wLimit*1000, "infeasible even at max scale-out")
			continue
		}
		total := p["parse"] + p["enrich"] + p["store"]
		fmt.Printf("%10v %9.1fms %8d %8d %8d %8d\n",
			bound, wLimit*1000, p["parse"], p["enrich"], p["store"], total)
	}

	fmt.Println("\nmarginal value of one more task at the current operating point:")
	for _, vm := range sm.Vertices {
		cur := vm.Current
		fmt.Printf("  %-7s W(p=%d)=%5.2f ms -> W(p=%d)=%5.2f ms  (e=%.2f)\n",
			vm.Name, cur, vm.Wait(cur)*1000, cur+1, vm.Wait(cur+1)*1000, vm.E)
	}
	return nil
}
